package interp

// ReachesMutable reports whether v can reach a mutable cell — a ref or
// an array — through immutable structure: records, vectors, constructor
// arguments, exception payloads, and closure captures (both engines'
// environment representations). The parallel exec scheduler uses it to
// decide whether a unit's imports expose shared mutable state, in which
// case the unit's execution must be serialized in commit order
// (DESIGN.md §4j).
//
// The walk stops *at* a ref or array without reading through it
// (RefV.Cell and ArrV.Elems are never dereferenced), so it touches only
// memory that is immutable once a value has escaped its creating
// execution: record/vector spines, constructor cells, environment
// links, and the activation frames of completed calls. That makes the
// scan safe to run concurrently with executions that mutate cells —
// everything behind the first mutable boundary is exactly what they
// mutate, and exactly what the scan never visits.
//
// The verdict is stable: a value from which no mutable cell is
// reachable is hereditarily immutable, so no later mutation anywhere
// can change the answer. Callers may therefore memoize it (the
// scheduler memoizes per import pid).
func ReachesMutable(v Value) bool {
	s := mutScan{}
	return s.value(v)
}

// mutScan carries the visited set: pointer-identity nodes (constructor
// cells, closures, env links, frames) are visited once, which both
// bounds shared-structure walks and terminates the cycles recursive
// closures create through their own environments.
type mutScan struct {
	seen map[any]bool
}

func (s *mutScan) visited(node any) bool {
	if s.seen[node] {
		return true
	}
	if s.seen == nil {
		s.seen = make(map[any]bool)
	}
	s.seen[node] = true
	return false
}

func (s *mutScan) value(v Value) bool {
	switch v := v.(type) {
	case *RefV:
		return v != nil
	case *ArrV:
		return v != nil
	case RecordV:
		for _, e := range v {
			if s.value(e) {
				return true
			}
		}
	case VecV:
		for _, e := range v {
			if s.value(e) {
				return true
			}
		}
	case *ConV:
		if v == nil || v.Arg == nil || s.visited(v) {
			return false
		}
		return s.value(v.Arg)
	case *ExnV:
		if v == nil || v.Arg == nil {
			return false
		}
		return s.value(v.Arg)
	case *Closure:
		if v == nil || s.visited(v) {
			return false
		}
		return s.env(v.Env)
	case *CompiledClosure:
		if v == nil || s.visited(v) {
			return false
		}
		return s.frame(v.Env)
	}
	// Scalars, exception tags, nil: hereditarily immutable.
	return false
}

func (s *mutScan) env(e *Env) bool {
	for ; e != nil; e = e.next {
		if s.visited(e) {
			return false
		}
		if e.v != nil && s.value(e.v) {
			return true
		}
	}
	return false
}

func (s *mutScan) frame(f *Frame) bool {
	for ; f != nil; f = f.up {
		if s.visited(f) {
			return false
		}
		for _, v := range f.slots {
			if v != nil && s.value(v) {
				return true
			}
		}
	}
	return false
}
