package interp

import (
	"testing"

	"repro/internal/lambda"
)

func TestReachesMutableImmutable(t *testing.T) {
	immutable := []Value{
		nil,
		IntV(1),
		WordV(2),
		RealV(3.0),
		StrV("s"),
		CharV('c'),
		Unit(),
		Bool(true),
		VecV{IntV(1), StrV("x")},
		RecordV{IntV(1), RecordV{StrV("nested")}},
		List([]Value{IntV(1), IntV(2), IntV(3)}),
		&ExnTag{Name: "E"},
		&ExnV{Tag: &ExnTag{Name: "E"}, Arg: IntV(7)},
		&ConV{Tag: 1, Name: "SOME", Arg: StrV("v")},
	}
	for _, v := range immutable {
		if ReachesMutable(v) {
			t.Errorf("ReachesMutable(%v) = true, want false", String(v))
		}
	}
}

func TestReachesMutableCells(t *testing.T) {
	r := &RefV{Cell: IntV(0)}
	a := &ArrV{Elems: []Value{IntV(1)}}
	cases := []Value{
		r,
		a,
		RecordV{IntV(1), r},
		VecV{a},
		&ConV{Tag: 1, Name: "SOME", Arg: r},
		List([]Value{IntV(1), r}),
		&ExnV{Tag: &ExnTag{Name: "E"}, Arg: a},
	}
	for _, v := range cases {
		if !ReachesMutable(v) {
			t.Errorf("ReachesMutable(%v) = false, want true", String(v))
		}
	}
}

// A closure capturing a ref in its environment is reachable mutable
// state — applying it can read or write the cell — for both engine
// representations.
func TestReachesMutableThroughClosures(t *testing.T) {
	r := &RefV{Cell: IntV(0)}

	var env *Env
	env = env.Bind(lambda.LVar(1), IntV(1))
	pure := &Closure{Body: &lambda.Int{Val: 0}, Env: env}
	if ReachesMutable(pure) {
		t.Error("tree closure over immutable env reported mutable")
	}
	capt := &Closure{Body: &lambda.Int{Val: 0}, Env: env.Bind(lambda.LVar(2), r)}
	if !ReachesMutable(capt) {
		t.Error("tree closure capturing a ref reported immutable")
	}

	fr := newFrame(nil, 2)
	fr.slots[0] = IntV(1)
	cpure := &CompiledClosure{Fn: &CompiledFn{NSlots: 2}, Env: fr}
	if ReachesMutable(cpure) {
		t.Error("compiled closure over immutable frame reported mutable")
	}
	up := newFrame(nil, 1)
	up.slots[0] = r
	ccapt := &CompiledClosure{Fn: &CompiledFn{NSlots: 1}, Env: newFrame(up, 1)}
	if !ReachesMutable(ccapt) {
		t.Error("compiled closure capturing a ref via a parent frame reported immutable")
	}
}

// Recursive closures are cyclic through their own environment; the
// visited set must terminate the walk.
func TestReachesMutableCyclicClosure(t *testing.T) {
	var env *Env
	c := &Closure{Body: &lambda.Int{Val: 0}}
	env = env.Bind(lambda.LVar(3), c)
	c.Env = env
	if ReachesMutable(c) {
		t.Error("pure recursive closure reported mutable")
	}

	fr := newFrame(nil, 1)
	cc := &CompiledClosure{Fn: &CompiledFn{NSlots: 1}, Env: fr}
	fr.slots[0] = cc
	if ReachesMutable(cc) {
		t.Error("pure recursive compiled closure reported mutable")
	}
	fr2 := newFrame(nil, 2)
	cc2 := &CompiledClosure{Fn: &CompiledFn{NSlots: 2}, Env: fr2}
	fr2.slots[0] = cc2
	fr2.slots[1] = &RefV{Cell: IntV(0)}
	if !ReachesMutable(cc2) {
		t.Error("recursive compiled closure capturing a ref reported immutable")
	}
}

// Ref cycles (a ref whose cell reaches itself) must not loop: the walk
// stops at the cell without dereferencing it.
func TestReachesMutableStopsAtCell(t *testing.T) {
	r := &RefV{}
	r.Cell = RecordV{r}
	if !ReachesMutable(r) {
		t.Error("self-referential ref reported immutable")
	}
	if !ReachesMutable(RecordV{r}) {
		t.Error("record holding self-referential ref reported immutable")
	}
}
