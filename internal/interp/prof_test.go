package interp

// Machine-level profiler invariants: the step count a build observes
// (exec.steps, MaxSteps budgets) is identical with profiling on or
// off, sample windows only accumulate between Begin/EndUnitProfile,
// and forks inherit the profiling configuration while keeping their
// sample buffers private.

import (
	"testing"

	"repro/internal/lambda"
)

// factTerm builds `fix fact n = if n = 0 then 1 else n * fact (n-1)
// in fact 10` — enough applications to cross a small sample period.
func factTerm() lambda.Exp {
	var g lambda.Gen
	fact := g.Fresh()
	n := g.Fresh()
	body := &lambda.If{
		Cond: &lambda.Prim{Op: "eq", Args: []lambda.Exp{&lambda.Var{LV: n}, lint(0)}},
		Then: lint(1),
		Else: &lambda.Prim{Op: "mul", Args: []lambda.Exp{
			&lambda.Var{LV: n},
			&lambda.App{Fn: &lambda.Var{LV: fact}, Arg: &lambda.Prim{
				Op: "sub", Args: []lambda.Exp{&lambda.Var{LV: n}, lint(1)},
			}},
		}},
	}
	return &lambda.Fix{
		Names: []lambda.LVar{fact},
		Fns:   []*lambda.Fn{{Param: n, Body: body}},
		Body:  &lambda.App{Fn: &lambda.Var{LV: fact}, Arg: lint(10)},
	}
}

func TestProfilingPreservesSteps(t *testing.T) {
	for _, engine := range []Engine{EngineTree, EngineClosure} {
		run := func(profiled bool) (uint64, Value) {
			m := NewMachine()
			m.Engine = engine
			if profiled {
				m.StartProfile(4)
				m.BeginUnitProfile("u")
			}
			v := evalOK(t, m, factTerm())
			if profiled {
				if up := m.EndUnitProfile(); up == nil {
					t.Fatalf("%s: no unit profile", engine)
				}
			}
			return m.Steps, v
		}
		plainSteps, plainV := run(false)
		profSteps, profV := run(true)
		if plainSteps != profSteps {
			t.Errorf("%s: steps %d unprofiled, %d profiled", engine, plainSteps, profSteps)
		}
		if !Eq(plainV, profV) {
			t.Errorf("%s: value %s unprofiled, %s profiled", engine, String(plainV), String(profV))
		}
	}
}

func TestUnitProfileWindows(t *testing.T) {
	m := NewMachine()
	m.StartProfile(4)
	// No window open: execution runs unattributed.
	evalOK(t, m, factTerm())
	if up := m.EndUnitProfile(); up != nil {
		t.Fatalf("EndUnitProfile with no open window returned %+v", up)
	}
	if ups := m.TakeUnitProfiles(); len(ups) != 0 {
		t.Fatalf("windowless execution produced %d unit profiles", len(ups))
	}
	// A window accumulates only its own steps.
	m.BeginUnitProfile("first")
	evalOK(t, m, factTerm())
	m.BeginUnitProfile("second") // resets: a fresh accumulator and countdown
	if up := m.EndUnitProfile(); up == nil || up.Unit != "second" || up.Steps != 0 {
		t.Fatalf("empty second window = %+v", up)
	}
	ups := m.TakeUnitProfiles()
	if len(ups) != 1 || ups[0].Unit != "second" {
		t.Fatalf("TakeUnitProfiles = %+v", ups)
	}
	if ups := m.TakeUnitProfiles(); len(ups) != 0 {
		t.Fatalf("second Take returned %d profiles, want drained", len(ups))
	}
}

func TestForkInheritsProfiling(t *testing.T) {
	m := NewMachine()
	m.StartProfile(4)
	f := m.Fork()
	if !f.ProfileEnabled() || f.ProfilePeriod() != 4 {
		t.Fatalf("fork profiling enabled=%v period=%d", f.ProfileEnabled(), f.ProfilePeriod())
	}
	f.BeginUnitProfile("forked")
	evalOK(t, f, factTerm())
	if up := f.EndUnitProfile(); up == nil || up.Steps == 0 {
		t.Fatalf("forked window = %+v", up)
	}
	// The fork's samples stay on the fork; the parent's buffer is empty.
	if ups := m.TakeUnitProfiles(); len(ups) != 0 {
		t.Fatalf("parent machine holds %d unit profiles from the fork", len(ups))
	}
	if ups := f.TakeUnitProfiles(); len(ups) != 1 {
		t.Fatalf("fork holds %d unit profiles, want 1", len(ups))
	}
}
