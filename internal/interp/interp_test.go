package interp

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lambda"
)

// evalOK evaluates e in an empty environment, failing on error.
func evalOK(t *testing.T, m *Machine, e lambda.Exp) Value {
	t.Helper()
	v, err := m.Eval(e, nil)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return v
}

func lint(n int64) lambda.Exp { return &lambda.Int{Val: n} }

func TestLiteralsAndRecords(t *testing.T) {
	m := NewMachine()
	v := evalOK(t, m, &lambda.Record{Fields: []lambda.Exp{
		lint(1), &lambda.Str{Val: "two"}, &lambda.Real{Val: 2.5},
	}})
	rec := v.(RecordV)
	if rec[0] != IntV(1) || rec[1] != StrV("two") || rec[2] != RealV(2.5) {
		t.Errorf("record = %s", String(v))
	}
	sel := evalOK(t, m, &lambda.Select{Idx: 1, Rec: &lambda.Record{
		Fields: []lambda.Exp{lint(1), lint(2)},
	}})
	if sel != IntV(2) {
		t.Errorf("select = %s", String(sel))
	}
}

func TestClosuresAndLet(t *testing.T) {
	m := NewMachine()
	var g lambda.Gen
	x := g.Fresh()
	y := g.Fresh()
	// let y = 10 in (fn x => x + y) 32
	e := &lambda.Let{
		LV: y, Bind: lint(10),
		Body: &lambda.App{
			Fn: &lambda.Fn{Param: x, Body: &lambda.Prim{
				Op: "add", Args: []lambda.Exp{&lambda.Var{LV: x}, &lambda.Var{LV: y}},
			}},
			Arg: lint(32),
		},
	}
	if v := evalOK(t, m, e); v != IntV(42) {
		t.Errorf("closure = %s", String(v))
	}
}

func TestFixRecursion(t *testing.T) {
	m := NewMachine()
	var g lambda.Gen
	fact := g.Fresh()
	n := g.Fresh()
	// fix fact n = if n = 0 then 1 else n * fact (n - 1)
	body := &lambda.If{
		Cond: &lambda.Prim{Op: "eq", Args: []lambda.Exp{&lambda.Var{LV: n}, lint(0)}},
		Then: lint(1),
		Else: &lambda.Prim{Op: "mul", Args: []lambda.Exp{
			&lambda.Var{LV: n},
			&lambda.App{Fn: &lambda.Var{LV: fact}, Arg: &lambda.Prim{
				Op: "sub", Args: []lambda.Exp{&lambda.Var{LV: n}, lint(1)},
			}},
		}},
	}
	e := &lambda.Fix{
		Names: []lambda.LVar{fact},
		Fns:   []*lambda.Fn{{Param: n, Body: body}},
		Body:  &lambda.App{Fn: &lambda.Var{LV: fact}, Arg: lint(10)},
	}
	if v := evalOK(t, m, e); v != IntV(3628800) {
		t.Errorf("fact 10 = %s", String(v))
	}
}

func TestArithPrims(t *testing.T) {
	m := NewMachine()
	cases := []struct {
		op   string
		a, b Value
		want Value
	}{
		{"add", IntV(2), IntV(3), IntV(5)},
		{"add", RealV(1.5), RealV(2.5), RealV(4)},
		{"add", WordV(7), WordV(8), WordV(15)},
		{"sub", IntV(2), IntV(5), IntV(-3)},
		{"mul", IntV(6), IntV(7), IntV(42)},
		{"div", IntV(7), IntV(2), IntV(3)},
		{"div", IntV(-7), IntV(2), IntV(-4)}, // flooring division
		{"mod", IntV(-7), IntV(2), IntV(1)},  // sign follows divisor
		{"mod", IntV(7), IntV(-2), IntV(-1)},
		{"lt", IntV(1), IntV(2), Bool(true)},
		{"ge", StrV("b"), StrV("a"), Bool(true)},
		{"lt", CharV('a'), CharV('b'), Bool(true)},
		{"eq", IntV(3), IntV(3), Bool(true)},
		{"ne", StrV("x"), StrV("y"), Bool(true)},
	}
	for _, c := range cases {
		got := m.prim(c.op, []Value{c.a, c.b})
		if !Eq(got, c.want) {
			t.Errorf("%s(%s, %s) = %s, want %s", c.op, String(c.a), String(c.b),
				String(got), String(c.want))
		}
	}
}

func TestDivByZeroRaisesDiv(t *testing.T) {
	m := NewMachine()
	e := &lambda.Prim{Op: "div", Args: []lambda.Exp{lint(1), lint(0)}}
	_, err := m.Eval(e, nil)
	ue, ok := err.(*UncaughtError)
	if !ok || ue.Packet.Tag != m.TagDiv {
		t.Errorf("div by zero: %v", err)
	}
}

func TestOverflowRaises(t *testing.T) {
	m := NewMachine()
	e := &lambda.Prim{Op: "add", Args: []lambda.Exp{
		lint(1<<62 + (1<<62 - 1)), lint(1),
	}}
	_, err := m.Eval(e, nil)
	ue, ok := err.(*UncaughtError)
	if !ok || ue.Packet.Tag != m.TagOverflow {
		t.Errorf("overflow: %v", err)
	}
}

func TestStringPrims(t *testing.T) {
	m := NewMachine()
	if m.prim("concat", []Value{StrV("ab"), StrV("cd")}) != StrV("abcd") {
		t.Error("concat")
	}
	if m.prim("size", []Value{StrV("hello")}) != IntV(5) {
		t.Error("size")
	}
	if m.prim("ord", []Value{CharV('A')}) != IntV(65) {
		t.Error("ord")
	}
	if m.prim("chr", []Value{IntV(66)}) != CharV('B') {
		t.Error("chr")
	}
	sub := m.prim("substring", []Value{RecordV{StrV("hello"), IntV(1), IntV(3)}})
	if sub != StrV("ell") {
		t.Error("substring")
	}
	lst, _ := GoList(m.prim("explode", []Value{StrV("hi")}))
	if len(lst) != 2 || lst[0] != CharV('h') {
		t.Error("explode")
	}
	if m.prim("implode", []Value{List([]Value{CharV('o'), CharV('k')})}) != StrV("ok") {
		t.Error("implode")
	}
}

func TestIntToString(t *testing.T) {
	m := NewMachine()
	if m.prim("intToString", []Value{IntV(-42)}) != StrV("~42") {
		t.Error("negative rendering")
	}
}

func TestHandleCatchesAndRethrows(t *testing.T) {
	m := NewMachine()
	var g lambda.Gen
	p := g.Fresh()
	// (raise Div) handle p => 7
	e := &lambda.Handle{
		Body:    &lambda.Prim{Op: "raiseDiv"},
		Param:   p,
		Handler: lint(7),
	}
	if v := evalOK(t, m, e); v != IntV(7) {
		t.Errorf("handle = %s", String(v))
	}
	// Handler that re-raises propagates out.
	e2 := &lambda.Handle{
		Body:    &lambda.Prim{Op: "raiseDiv"},
		Param:   p,
		Handler: &lambda.Raise{Exp: &lambda.Var{LV: p}},
	}
	if _, err := m.Eval(e2, nil); err == nil {
		t.Error("re-raise swallowed")
	}
}

func TestExceptionTagsAreGenerative(t *testing.T) {
	m := NewMachine()
	v1 := evalOK(t, m, &lambda.NewExnTag{Name: "E"})
	v2 := evalOK(t, m, &lambda.NewExnTag{Name: "E"})
	if Eq(v1, v2) {
		t.Error("distinct tag allocations compare equal")
	}
	packet := &ExnV{Tag: v1.(*ExnTag)}
	if !Truth(m.prim("exnMatches", []Value{packet, v1})) {
		t.Error("tag does not match its own packet")
	}
	if Truth(m.prim("exnMatches", []Value{packet, v2})) {
		t.Error("foreign tag matched")
	}
}

func TestSwitches(t *testing.T) {
	m := NewMachine()
	sw := &lambda.Switch{
		Kind:  lambda.SwitchInt,
		Scrut: lint(5),
		Cases: []lambda.Case{
			{IntKey: 1, Body: lint(10)},
			{IntKey: 5, Body: lint(50)},
		},
		Default: lint(0),
	}
	if v := evalOK(t, m, sw); v != IntV(50) {
		t.Errorf("int switch = %s", String(v))
	}
	conSw := &lambda.Switch{
		Kind:  lambda.SwitchConTag,
		Scrut: &lambda.Con{Tag: 1, Name: "true"},
		Span:  2,
		Cases: []lambda.Case{
			{Tag: 0, Body: lint(0)},
			{Tag: 1, Body: lint(1)},
		},
	}
	if v := evalOK(t, m, conSw); v != IntV(1) {
		t.Errorf("con switch = %s", String(v))
	}
	strSw := &lambda.Switch{
		Kind:    lambda.SwitchStr,
		Scrut:   &lambda.Str{Val: "b"},
		Cases:   []lambda.Case{{StrKey: "a", Body: lint(1)}, {StrKey: "b", Body: lint(2)}},
		Default: lint(0),
	}
	if v := evalOK(t, m, strSw); v != IntV(2) {
		t.Errorf("str switch = %s", String(v))
	}
}

func TestRefs(t *testing.T) {
	m := NewMachine()
	r := m.prim("ref", []Value{IntV(1)})
	if m.prim("deref", []Value{r}) != IntV(1) {
		t.Error("deref")
	}
	m.prim("assign", []Value{r, IntV(2)})
	if m.prim("deref", []Value{r}) != IntV(2) {
		t.Error("assign")
	}
	// Refs compare by identity.
	r2 := m.prim("ref", []Value{IntV(2)})
	if Eq(r, r2) {
		t.Error("distinct refs equal")
	}
	if !Eq(r, r) {
		t.Error("ref not equal to itself")
	}
}

func TestPrint(t *testing.T) {
	m := NewMachine()
	var out bytes.Buffer
	m.Stdout = &out
	m.prim("print", []Value{StrV("hello\n")})
	if out.String() != "hello\n" {
		t.Errorf("print wrote %q", out.String())
	}
}

func TestStructuralEquality(t *testing.T) {
	a := RecordV{IntV(1), List([]Value{StrV("x")}), &ConV{Tag: 1, Name: "SOME", Arg: IntV(2)}}
	b := RecordV{IntV(1), List([]Value{StrV("x")}), &ConV{Tag: 1, Name: "SOME", Arg: IntV(2)}}
	if !Eq(a, b) {
		t.Error("structurally equal values differ")
	}
	c := RecordV{IntV(1), List([]Value{StrV("y")}), &ConV{Tag: 1, Name: "SOME", Arg: IntV(2)}}
	if Eq(a, c) {
		t.Error("different values equal")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{IntV(-3), "~3"},
		{RealV(1.5), "1.5"},
		{StrV("a\"b"), `"a\"b"`},
		{CharV('x'), `#"x"`},
		{Unit(), "()"},
		{RecordV{IntV(1), IntV(2)}, "(1, 2)"},
		{List([]Value{IntV(1), IntV(2)}), "[1, 2]"},
		{Bool(true), "true"},
		{&ConV{Tag: 1, Name: "SOME", Arg: IntV(5)}, "SOME 5"},
	}
	for _, c := range cases {
		if got := String(c.v); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestStepBudget(t *testing.T) {
	m := NewMachine()
	m.MaxSteps = 1000
	var g lambda.Gen
	loop := g.Fresh()
	u := g.Fresh()
	e := &lambda.Fix{
		Names: []lambda.LVar{loop},
		Fns: []*lambda.Fn{{Param: u, Body: &lambda.App{
			Fn: &lambda.Var{LV: loop}, Arg: lambda.Unit(),
		}}},
		Body: &lambda.App{Fn: &lambda.Var{LV: loop}, Arg: lambda.Unit()},
	}
	_, err := m.Eval(e, nil)
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Errorf("divergence not bounded: %v", err)
	}
}

func TestUnboundVariableCrash(t *testing.T) {
	m := NewMachine()
	_, err := m.Eval(&lambda.Var{LV: 999}, nil)
	if _, ok := err.(*CrashError); !ok {
		t.Errorf("want crash, got %v", err)
	}
}

// Property: Eq is reflexive and symmetric on generated first-order
// values.
func TestQuickEq(t *testing.T) {
	gen := func(seed uint64) Value {
		switch seed % 5 {
		case 0:
			return IntV(int64(seed >> 3))
		case 1:
			return StrV(string(rune('a' + seed%26)))
		case 2:
			return Bool(seed%2 == 0)
		case 3:
			return RecordV{IntV(int64(seed % 7)), Bool(seed%3 == 0)}
		default:
			return List([]Value{IntV(int64(seed % 11))})
		}
	}
	f := func(a, b uint64) bool {
		va, vb := gen(a), gen(b)
		if !Eq(va, va) || !Eq(vb, vb) {
			return false
		}
		return Eq(va, vb) == Eq(vb, va)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: GoList inverts List.
func TestQuickListRoundTrip(t *testing.T) {
	f := func(xs []int64) bool {
		vals := make([]Value, len(xs))
		for i, x := range xs {
			vals[i] = IntV(x)
		}
		back, ok := GoList(List(vals))
		if !ok || len(back) != len(vals) {
			return false
		}
		for i := range vals {
			if back[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
