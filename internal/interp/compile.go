package interp

// The compiled-execution engine (ROADMAP "compile codeUnits to
// closures"): a one-pass compiler from lambda terms to trees of Go
// closures over array-indexed activation frames. Where the tree walker
// resolves every variable by an O(n) scan of the linked Env list at
// each occurrence, this backend resolves each occurrence once, at
// compile time, to a (depth delta, slot index) coordinate; at run time
// a variable reference is one or two pointer hops plus an array index.
//
// The coordinate assignment — the "slot layout" — is the only output
// of resolution, so it is what gets pickled into the bin file's code
// section (binfile V2): per Var in DFS order, the uvarint pair
// (depth delta, slot). Binder slots are recomputed from the term shape
// itself at load, so warm builds rebuild the compiled form without
// ever constructing an LVar scope map (see DESIGN.md §4j).

import (
	"encoding/binary"
	"fmt"

	"repro/internal/lambda"
)

// Engine selects the execution backend a Machine runs unit code with.
// Both engines produce identical values, exceptions, and output (the
// FuzzExecTreeVsClosure differential target pins this); only speed
// differs.
type Engine int

const (
	// EngineClosure — the default (zero value) — executes units through
	// the compiled-closure backend.
	EngineClosure Engine = iota
	// EngineTree executes units with the original tree-walking
	// evaluator; the -exec=tree escape hatch.
	EngineTree
)

// String returns the -exec flag spelling of the engine.
func (e Engine) String() string {
	if e == EngineTree {
		return "tree"
	}
	return "closure"
}

// ParseEngine maps a -exec flag value to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "closure":
		return EngineClosure, nil
	case "tree":
		return EngineTree, nil
	}
	return 0, fmt.Errorf("unknown exec engine %q (want tree or closure)", s)
}

// frameInline is the widest frame served from the inline array (and
// from the machine's frame pool).
const frameInline = 4

// Frame is one activation record of the compiled engine: the values of
// a function's parameter (slot 0) and body binders, linked to the
// lexically enclosing activation. Frames up to frameInline slots wide
// use the inline array, so a typical application costs one allocation
// at most — and none at all when the frame is non-escaping and pooled.
type Frame struct {
	up     *Frame
	slots  []Value
	inline [frameInline]Value
}

func newFrame(up *Frame, n int) *Frame {
	fr := &Frame{up: up}
	if n <= len(fr.inline) {
		fr.slots = fr.inline[:n]
	} else {
		fr.slots = make([]Value, n)
	}
	return fr
}

// cnode is one compiled expression: evaluate under an activation frame.
type cnode func(m *Machine, fr *Frame) Value

// CompiledFn is a function's code in compiled form.
type CompiledFn struct {
	// NSlots is the activation-frame width: slot 0 holds the argument,
	// the rest the body's Let/Fix/Handle binders in allocation order.
	NSlots int
	body   cnode
	// escapes reports whether an activation frame of this function can
	// outlive the call: any Fn or Fix node under the body creates a
	// closure whose captured chain includes this frame. A non-escaping
	// frame is returned to the machine's pool after the call, making
	// hot first-order applications (arithmetic recursion) allocation-
	// free. Computed from the term shape alone, so CompileFn and LoadFn
	// agree by construction.
	escapes bool

	// ID is this function's index in the one shared DFS walk of its
	// unit's term — the profiler's function identity. Because resolve
	// and decode mode share the walk, CompileFn and LoadFn assign the
	// same IDs by construction, so a profile captured from a cold
	// compile and from a warm bin load attribute identically. Neither
	// ID nor tab is serialized: the bin code section stays byte-for-
	// byte what it was without the profiler.
	ID  int32
	tab *fnTable
}

// fnTable is the per-unit side table shared by every CompiledFn of one
// compiled term: the unit name (set once, before execution, by
// SetUnit) and each function's lexically enclosing function, indexed
// by ID (-1 for the root).
type fnTable struct {
	unit    string
	parents []int32
}

// SetUnit records the owning unit's name on the whole compiled term.
// Call it before the term executes; samples taken afterwards attribute
// every function of the term to that unit.
func (f *CompiledFn) SetUnit(name string) {
	if f != nil && f.tab != nil {
		f.tab.unit = name
	}
}

// Unit returns the unit name recorded by SetUnit ("" before).
func (f *CompiledFn) Unit() string {
	if f == nil || f.tab == nil {
		return ""
	}
	return f.tab.unit
}

// NumFuncs returns how many functions the compiled term contains.
func (f *CompiledFn) NumFuncs() int {
	if f == nil || f.tab == nil {
		return 0
	}
	return len(f.tab.parents)
}

// ParentOf returns the ID of the lexically enclosing function of id,
// or -1 for the root (and for out-of-range ids).
func (f *CompiledFn) ParentOf(id int32) int32 {
	if f == nil || f.tab == nil || id < 0 || int(id) >= len(f.tab.parents) {
		return -1
	}
	return f.tab.parents[id]
}

// Small-int cache: boxing an IntV into a Value allocates, and the int
// fast paths below produce results in a narrow band overwhelmingly
// often. One shared boxed value is observationally identical to a
// fresh one (IntV is immutable and compared by value).
const (
	smallIntLo   = -512
	smallIntHi   = 8192
	smallIntSpan = smallIntHi - smallIntLo + 1
)

var smallInts = func() [smallIntSpan]Value {
	var t [smallIntSpan]Value
	for i := range t {
		t[i] = IntV(int64(i) + smallIntLo)
	}
	return t
}()

func boxInt(n int64) Value {
	if n >= smallIntLo && n <= smallIntHi {
		return smallInts[n-smallIntLo]
	}
	return IntV(n)
}

// CompiledClosure pairs a compiled function with its captured frame
// chain — the compiled engine's counterpart of *Closure. The two
// closure forms interoperate: Machine.apply dispatches on either, so a
// tree-built value can be applied by compiled code and vice versa.
type CompiledClosure struct {
	Fn  *CompiledFn
	Env *Frame
}

func (*CompiledClosure) isValue() {}

// CompileFn compiles a unit's code (the λ(import-vector).(exports)
// function of §3) to the closure form, returning it with the
// serialized slot layout — the bin file's code section.
func CompileFn(fn *lambda.Fn) (*CompiledFn, []byte, error) {
	c := &comp{resolve: true, scope: make(map[lambda.LVar]loc), tab: &fnTable{}}
	cf := c.fn(fn)
	if c.err != nil {
		return nil, nil, c.err
	}
	if c.out == nil {
		c.out = []byte{}
	}
	return cf, c.out, nil
}

// LoadFn rebuilds the compiled form from the term plus a code section
// produced by CompileFn, skipping scope resolution entirely. Every
// coordinate is validated against the frames the term itself declares,
// and the section must be consumed exactly, so a corrupt or forged
// section yields an error — never a mis-indexed frame.
func LoadFn(fn *lambda.Fn, section []byte) (*CompiledFn, error) {
	c := &comp{in: section, tab: &fnTable{}}
	cf := c.fn(fn)
	if c.err != nil {
		return nil, c.err
	}
	if c.pos != len(section) {
		return nil, fmt.Errorf("code section: %d trailing bytes", len(section)-c.pos)
	}
	return cf, nil
}

// IndexFns replays CompileFn's resolve walk over root, additionally
// recording which *lambda.Fn node became which compiled function. The
// returned map is the bridge the profiler uses to give tree-walker
// closures (and symbol names, which live on the term) the same
// function IDs the compiled engine assigns — same walk, same IDs, by
// construction. Fn nodes consumed by the walk's beta-reduction (the
// eta-expanded primitive redexes) never become functions in either
// engine and so are absent from the map.
func IndexFns(root *lambda.Fn) (*CompiledFn, map[*lambda.Fn]*CompiledFn, error) {
	c := &comp{
		resolve: true,
		scope:   make(map[lambda.LVar]loc),
		tab:     &fnTable{},
		fnOf:    make(map[*lambda.Fn]*CompiledFn),
	}
	cf := c.fn(root)
	if c.err != nil {
		return nil, nil, c.err
	}
	return cf, c.fnOf, nil
}

// loc is a binder's coordinate: the frame that holds it (by absolute
// nesting depth, 1 = outermost function) and its slot in that frame.
type loc struct {
	depth int
	slot  int
}

// comp walks a term once, in one of two coordinate modes: resolve mode
// computes each Var's coordinate from a scope map and appends it to
// the section being built; decode mode reads coordinates back from a
// section, validating as it goes. Both modes share the one walk, so
// slot allocation order — and therefore the meaning of every
// coordinate — is identical by construction.
type comp struct {
	resolve bool
	scope   map[lambda.LVar]loc // resolve mode only
	nslots  []int               // per open frame: slots allocated so far
	escaped []bool              // per open frame: captured by some closure
	out     []byte              // resolve mode: section being built
	in      []byte              // decode mode: section being read
	pos     int
	err     error

	// Profiler identity, assigned by the same walk that assigns slots:
	// tab collects each function's parent in DFS preorder; fnids is
	// the stack of open function IDs; fnOf, when non-nil (IndexFns),
	// additionally maps term nodes to their compiled functions.
	tab   *fnTable
	fnids []int32
	fnOf  map[*lambda.Fn]*CompiledFn
}

func (c *comp) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *comp) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.in[c.pos:])
	if n <= 0 {
		c.fail("code section: truncated coordinate")
		return 0
	}
	c.pos += n
	return v
}

// coord produces a Var's (depth delta, slot) coordinate. In decode
// mode the delta must name an open frame and the slot must already be
// allocated in it — which, because binders dominate their uses in DFS
// order, guarantees the run-time read stays inside the frame.
func (c *comp) coord(lv lambda.LVar) (delta, slot int) {
	if c.resolve {
		l, ok := c.scope[lv]
		if !ok {
			c.fail("unbound lambda variable v%d", lv)
			return 0, 0
		}
		delta = len(c.nslots) - l.depth
		c.out = binary.AppendUvarint(c.out, uint64(delta))
		c.out = binary.AppendUvarint(c.out, uint64(l.slot))
		return delta, l.slot
	}
	d := c.uvarint()
	s := c.uvarint()
	if c.err != nil {
		return 0, 0
	}
	if d >= uint64(len(c.nslots)) {
		c.fail("code section: depth delta %d with %d frames open", d, len(c.nslots))
		return 0, 0
	}
	if s >= uint64(c.nslots[len(c.nslots)-1-int(d)]) {
		c.fail("code section: slot %d not yet allocated at delta %d", s, d)
		return 0, 0
	}
	return int(d), int(s)
}

// alloc claims the next slot of the innermost open frame.
func (c *comp) alloc() int {
	s := c.nslots[len(c.nslots)-1]
	c.nslots[len(c.nslots)-1] = s + 1
	return s
}

// bind enters lv at the given slot of the innermost frame, returning
// what unbind needs to restore the outer scope (shadowing-safe).
func (c *comp) bind(lv lambda.LVar, slot int) (loc, bool) {
	if !c.resolve {
		return loc{}, false
	}
	old, had := c.scope[lv]
	c.scope[lv] = loc{depth: len(c.nslots), slot: slot}
	return old, had
}

func (c *comp) unbind(lv lambda.LVar, old loc, had bool) {
	if !c.resolve {
		return
	}
	if had {
		c.scope[lv] = old
	} else {
		delete(c.scope, lv)
	}
}

// fn compiles one function: a fresh frame with the parameter at slot 0.
// It also assigns the function's profiler ID — its DFS preorder index
// — and records its enclosing function, in the same walk that assigns
// slots, so resolve and decode mode agree on identities exactly as
// they agree on coordinates.
func (c *comp) fn(e *lambda.Fn) *CompiledFn {
	id := int32(len(c.tab.parents))
	parent := int32(-1)
	if len(c.fnids) > 0 {
		parent = c.fnids[len(c.fnids)-1]
	}
	c.tab.parents = append(c.tab.parents, parent)
	c.fnids = append(c.fnids, id)
	c.nslots = append(c.nslots, 1)
	c.escaped = append(c.escaped, false)
	old, had := c.bind(e.Param, 0)
	body := c.walk(e.Body)
	c.unbind(e.Param, old, had)
	f := &CompiledFn{
		NSlots:  c.nslots[len(c.nslots)-1],
		body:    body,
		escapes: c.escaped[len(c.escaped)-1],
		ID:      id,
		tab:     c.tab,
	}
	c.nslots = c.nslots[:len(c.nslots)-1]
	c.escaped = c.escaped[:len(c.escaped)-1]
	c.fnids = c.fnids[:len(c.fnids)-1]
	if c.fnOf != nil {
		c.fnOf[e] = f
	}
	return f
}

// markEscapes records that a closure is created at the current point:
// its captured chain includes every open frame.
func (c *comp) markEscapes() {
	for i := range c.escaped {
		c.escaped[i] = true
	}
}

func (c *comp) walkAll(es []lambda.Exp) []cnode {
	out := make([]cnode, len(es))
	for i, e := range es {
		out[i] = c.walk(e)
	}
	return out
}

func (c *comp) walk(e lambda.Exp) cnode {
	switch e := e.(type) {
	case *lambda.Var:
		delta, slot := c.coord(e.LV)
		switch delta {
		case 0:
			return func(m *Machine, fr *Frame) Value { return fr.slots[slot] }
		case 1:
			return func(m *Machine, fr *Frame) Value { return fr.up.slots[slot] }
		default:
			return func(m *Machine, fr *Frame) Value {
				f := fr
				for i := 0; i < delta; i++ {
					f = f.up
				}
				return f.slots[slot]
			}
		}
	case *lambda.Int:
		v := boxInt(e.Val)
		return func(*Machine, *Frame) Value { return v }
	case *lambda.Word:
		v := WordV(e.Val)
		return func(*Machine, *Frame) Value { return v }
	case *lambda.Real:
		v := RealV(e.Val)
		return func(*Machine, *Frame) Value { return v }
	case *lambda.Str:
		v := StrV(e.Val)
		return func(*Machine, *Frame) Value { return v }
	case *lambda.Char:
		v := CharV(e.Val)
		return func(*Machine, *Frame) Value { return v }
	case *lambda.Record:
		if len(e.Fields) == 0 {
			u := Unit()
			return func(*Machine, *Frame) Value { return u }
		}
		fields := c.walkAll(e.Fields)
		return func(m *Machine, fr *Frame) Value {
			vs := make(RecordV, len(fields))
			for i, f := range fields {
				vs[i] = f(m, fr)
			}
			return vs
		}
	case *lambda.Select:
		rec := c.walk(e.Rec)
		idx := e.Idx
		return func(m *Machine, fr *Frame) Value {
			v := rec(m, fr)
			r, ok := v.(RecordV)
			if !ok || idx >= len(r) {
				m.crash("select .%d from non-record %s", idx, String(v))
			}
			return r[idx]
		}
	case *lambda.Fn:
		c.markEscapes()
		fn := c.fn(e)
		return func(m *Machine, fr *Frame) Value {
			return &CompiledClosure{Fn: fn, Env: fr}
		}
	case *lambda.Fix:
		c.markEscapes()
		// Allocate all name slots first, then compile the functions and
		// body under the extended scope; at run time the closures are
		// written into the shared frame before the body runs, which ties
		// the mutual-recursion knot through the frame pointer.
		slots := make([]int, len(e.Names))
		olds := make([]loc, len(e.Names))
		hads := make([]bool, len(e.Names))
		for i, name := range e.Names {
			slots[i] = c.alloc()
			olds[i], hads[i] = c.bind(name, slots[i])
		}
		fns := make([]*CompiledFn, len(e.Fns))
		for i, fn := range e.Fns {
			fns[i] = c.fn(fn)
		}
		body := c.walk(e.Body)
		for i := len(e.Names) - 1; i >= 0; i-- {
			c.unbind(e.Names[i], olds[i], hads[i])
		}
		return func(m *Machine, fr *Frame) Value {
			for i, fn := range fns {
				fr.slots[slots[i]] = &CompiledClosure{Fn: fn, Env: fr}
			}
			return body(m, fr)
		}
	case *lambda.App:
		// Beta-reduce literal-lambda applications at compile time. The
		// elaborator eta-expands every primitive into
		// (fn p => prim(#0 p, ..., #k p)) and applies it to a tuple at
		// each use site; run naively that is a closure, a frame, and a
		// record allocation per arithmetic op. Reducing the redex here
		// turns the pattern back into a direct prim evaluation. The
		// general redex becomes a let-binding in the current frame.
		// Both reductions are pure term-shape rewrites, so CompileFn and
		// LoadFn agree and the section stream stays aligned.
		if fn, ok := e.Fn.(*lambda.Fn); ok {
			if prim, ok := fn.Body.(*lambda.Prim); ok {
				// The match compiler often wraps the argument tuple in
				// Let bindings (Let v7=... in Record[v7,...]); peel them
				// into slot binds of the current frame so the fusion
				// still sees the record literal underneath.
				var lets []*lambda.Let
				core := e.Arg
				for {
					l, isLet := core.(*lambda.Let)
					if !isLet {
						break
					}
					lets = append(lets, l)
					core = l.Body
				}
				if args, ok := etaPrimArgs(fn.Param, prim.Args, core); ok {
					binds := make([]cnode, len(lets))
					slots := make([]int, len(lets))
					olds := make([]loc, len(lets))
					hads := make([]bool, len(lets))
					for i, l := range lets {
						binds[i] = c.walk(l.Bind)
						slots[i] = c.alloc()
						olds[i], hads[i] = c.bind(l.LV, slots[i])
					}
					primc := c.prim(&lambda.Prim{Op: prim.Op, Args: args})
					for i := len(lets) - 1; i >= 0; i-- {
						c.unbind(lets[i].LV, olds[i], hads[i])
					}
					if len(lets) == 0 {
						return primc
					}
					return func(m *Machine, fr *Frame) Value {
						for i, b := range binds {
							fr.slots[slots[i]] = b(m, fr)
						}
						return primc(m, fr)
					}
				}
			}
			argc := c.walk(e.Arg)
			slot := c.alloc()
			old, had := c.bind(fn.Param, slot)
			bodyc := c.walk(fn.Body)
			c.unbind(fn.Param, old, had)
			return func(m *Machine, fr *Frame) Value {
				fr.slots[slot] = argc(m, fr)
				return bodyc(m, fr)
			}
		}
		fnc := c.walk(e.Fn)
		argc := c.walk(e.Arg)
		return func(m *Machine, fr *Frame) Value {
			return m.apply(fnc(m, fr), argc(m, fr))
		}
	case *lambda.Let:
		// A dead closure binding (the match compiler's unreached
		// raise-Match arm is the common case) would force every frame
		// under it to be marked escaping. Creating a closure is pure,
		// so dropping the binding is unobservable — and it keeps hot
		// first-order frames poolable.
		if _, isFn := e.Bind.(*lambda.Fn); isFn && !usesVar(e.Body, e.LV) {
			return c.walk(e.Body)
		}
		bindc := c.walk(e.Bind)
		slot := c.alloc()
		old, had := c.bind(e.LV, slot)
		bodyc := c.walk(e.Body)
		c.unbind(e.LV, old, had)
		return func(m *Machine, fr *Frame) Value {
			fr.slots[slot] = bindc(m, fr)
			return bodyc(m, fr)
		}
	case *lambda.Con:
		if e.Arg == nil {
			// Nullary constructors are immutable and compared
			// structurally, so one shared value is observationally
			// identical to a fresh one per evaluation.
			v := &ConV{Tag: e.Tag, Name: e.Name}
			return func(*Machine, *Frame) Value { return v }
		}
		tag, name := e.Tag, e.Name
		argc := c.walk(e.Arg)
		return func(m *Machine, fr *Frame) Value {
			return &ConV{Tag: tag, Name: name, Arg: argc(m, fr)}
		}
	case *lambda.Decon:
		ec := c.walk(e.Exp)
		return func(m *Machine, fr *Frame) Value {
			v := ec(m, fr)
			cv, ok := v.(*ConV)
			if !ok || cv.Arg == nil {
				m.crash("decon of non-constructed value %s", String(v))
			}
			return cv.Arg
		}
	case *lambda.NewExnTag:
		// Exception declarations are generative: a fresh tag identity
		// per evaluation, exactly like the tree walker.
		name := e.Name
		return func(*Machine, *Frame) Value { return &ExnTag{Name: name} }
	case *lambda.ExnCon:
		tagc := c.walk(e.Tag)
		var argc cnode
		if e.Arg != nil {
			argc = c.walk(e.Arg)
		}
		return func(m *Machine, fr *Frame) Value {
			tv := tagc(m, fr)
			t, ok := tv.(*ExnTag)
			if !ok {
				m.crash("exncon with non-tag %s", String(tv))
			}
			ev := &ExnV{Tag: t}
			if argc != nil {
				ev.Arg = argc(m, fr)
			}
			return ev
		}
	case *lambda.ExnDecon:
		ec := c.walk(e.Exp)
		return func(m *Machine, fr *Frame) Value {
			v := ec(m, fr)
			ev, ok := v.(*ExnV)
			if !ok || ev.Arg == nil {
				m.crash("exndecon of %s", String(v))
			}
			return ev.Arg
		}
	case *lambda.If:
		condc := c.walk(e.Cond)
		thenc := c.walk(e.Then)
		elsec := c.walk(e.Else)
		return func(m *Machine, fr *Frame) Value {
			if Truth(condc(m, fr)) {
				return thenc(m, fr)
			}
			return elsec(m, fr)
		}
	case *lambda.Switch:
		return c.switchNode(e)
	case *lambda.Prim:
		return c.prim(e)
	case *lambda.Builtin:
		name := e.Name
		return func(m *Machine, fr *Frame) Value {
			v, ok := m.builtins[name]
			if !ok {
				m.crash("unknown builtin %q", name)
			}
			return v
		}
	case *lambda.Raise:
		ec := c.walk(e.Exp)
		return func(m *Machine, fr *Frame) Value {
			v := ec(m, fr)
			ev, ok := v.(*ExnV)
			if !ok {
				m.crash("raise of non-exception %s", String(v))
			}
			panic(&MLRaise{Packet: ev})
		}
	case *lambda.Handle:
		bodyc := c.walk(e.Body)
		slot := c.alloc()
		old, had := c.bind(e.Param, slot)
		handlerc := c.walk(e.Handler)
		c.unbind(e.Param, old, had)
		return func(m *Machine, fr *Frame) (result Value) {
			caught := func() (packet *ExnV) {
				defer func() {
					if r := recover(); r != nil {
						if mr, ok := r.(*MLRaise); ok {
							packet = mr.Packet
							return
						}
						panic(r)
					}
				}()
				result = bodyc(m, fr)
				return nil
			}()
			if caught == nil {
				return result
			}
			fr.slots[slot] = caught
			return handlerc(m, fr)
		}
	}
	c.fail("unknown lambda node %T", e)
	return func(m *Machine, fr *Frame) Value {
		return m.crash("uncompilable node %T", e)
	}
}

// etaPrimArgs recognizes the elaborator's eta-expansion shape applied
// to a matching argument and returns the prim's direct argument terms:
// params [#0 p, ..., #k p] against a k+1-field record argument (the
// fields become the args), or [p] against any argument (unary prims).
func etaPrimArgs(p lambda.LVar, primArgs []lambda.Exp, arg lambda.Exp) ([]lambda.Exp, bool) {
	if len(primArgs) == 1 {
		if v, ok := primArgs[0].(*lambda.Var); ok && v.LV == p {
			return []lambda.Exp{arg}, true
		}
	}
	rec, ok := arg.(*lambda.Record)
	if !ok || len(rec.Fields) != len(primArgs) || len(primArgs) == 0 {
		return nil, false
	}
	for i, a := range primArgs {
		sel, ok := a.(*lambda.Select)
		if !ok || sel.Idx != i {
			return nil, false
		}
		v, ok := sel.Rec.(*lambda.Var)
		if !ok || v.LV != p {
			return nil, false
		}
	}
	return rec.Fields, true
}

// usesVar reports whether lv occurs free in e. Shadowing binders cut
// the search; an unknown node kind conservatively reports a use.
func usesVar(e lambda.Exp, lv lambda.LVar) bool {
	switch e := e.(type) {
	case *lambda.Var:
		return e.LV == lv
	case *lambda.Int, *lambda.Word, *lambda.Real, *lambda.Str, *lambda.Char,
		*lambda.Builtin, *lambda.NewExnTag:
		return false
	case *lambda.Record:
		for _, f := range e.Fields {
			if usesVar(f, lv) {
				return true
			}
		}
		return false
	case *lambda.Select:
		return usesVar(e.Rec, lv)
	case *lambda.Fn:
		return e.Param != lv && usesVar(e.Body, lv)
	case *lambda.Fix:
		for _, n := range e.Names {
			if n == lv {
				return false
			}
		}
		for _, f := range e.Fns {
			if f.Param != lv && usesVar(f.Body, lv) {
				return true
			}
		}
		return usesVar(e.Body, lv)
	case *lambda.App:
		return usesVar(e.Fn, lv) || usesVar(e.Arg, lv)
	case *lambda.Let:
		if usesVar(e.Bind, lv) {
			return true
		}
		return e.LV != lv && usesVar(e.Body, lv)
	case *lambda.Con:
		return e.Arg != nil && usesVar(e.Arg, lv)
	case *lambda.Decon:
		return usesVar(e.Exp, lv)
	case *lambda.ExnCon:
		return usesVar(e.Tag, lv) || (e.Arg != nil && usesVar(e.Arg, lv))
	case *lambda.ExnDecon:
		return usesVar(e.Exp, lv)
	case *lambda.If:
		return usesVar(e.Cond, lv) || usesVar(e.Then, lv) || usesVar(e.Else, lv)
	case *lambda.Switch:
		if usesVar(e.Scrut, lv) {
			return true
		}
		for _, cs := range e.Cases {
			if usesVar(cs.Body, lv) {
				return true
			}
		}
		return e.Default != nil && usesVar(e.Default, lv)
	case *lambda.Prim:
		for _, a := range e.Args {
			if usesVar(a, lv) {
				return true
			}
		}
		return false
	case *lambda.Raise:
		return usesVar(e.Exp, lv)
	case *lambda.Handle:
		if usesVar(e.Body, lv) {
			return true
		}
		return e.Param != lv && usesVar(e.Handler, lv)
	}
	return true
}

func (c *comp) switchNode(e *lambda.Switch) cnode {
	scrut := c.walk(e.Scrut)
	bodies := make([]cnode, len(e.Cases))
	for i, cs := range e.Cases {
		bodies[i] = c.walk(cs.Body)
	}
	var def cnode
	if e.Default != nil {
		def = c.walk(e.Default)
	}
	cases := e.Cases
	miss := func(m *Machine, fr *Frame) Value {
		if def == nil {
			m.crash("non-exhaustive switch with no default")
		}
		return def(m, fr)
	}
	switch e.Kind {
	case lambda.SwitchConTag:
		return func(m *Machine, fr *Frame) Value {
			v := scrut(m, fr)
			cv, ok := v.(*ConV)
			if !ok {
				m.crash("switch on non-constructed value %s", String(v))
			}
			for i := range cases {
				if cases[i].Tag == cv.Tag {
					return bodies[i](m, fr)
				}
			}
			return miss(m, fr)
		}
	case lambda.SwitchInt:
		return func(m *Machine, fr *Frame) Value {
			v := scrut(m, fr)
			n, ok := v.(IntV)
			if !ok {
				m.crash("int switch on %s", String(v))
			}
			for i := range cases {
				if cases[i].IntKey == int64(n) {
					return bodies[i](m, fr)
				}
			}
			return miss(m, fr)
		}
	case lambda.SwitchWord:
		return func(m *Machine, fr *Frame) Value {
			v := scrut(m, fr)
			n, ok := v.(WordV)
			if !ok {
				m.crash("word switch on %s", String(v))
			}
			for i := range cases {
				if cases[i].WordKey == uint64(n) {
					return bodies[i](m, fr)
				}
			}
			return miss(m, fr)
		}
	case lambda.SwitchStr:
		return func(m *Machine, fr *Frame) Value {
			v := scrut(m, fr)
			s, ok := v.(StrV)
			if !ok {
				m.crash("string switch on %s", String(v))
			}
			for i := range cases {
				if cases[i].StrKey == string(s) {
					return bodies[i](m, fr)
				}
			}
			return miss(m, fr)
		}
	case lambda.SwitchChar:
		return func(m *Machine, fr *Frame) Value {
			v := scrut(m, fr)
			ch, ok := v.(CharV)
			if !ok {
				m.crash("char switch on %s", String(v))
			}
			for i := range cases {
				if len(cases[i].StrKey) == 1 && cases[i].StrKey[0] == byte(ch) {
					return bodies[i](m, fr)
				}
			}
			return miss(m, fr)
		}
	}
	return func(m *Machine, fr *Frame) Value {
		return m.crash("unknown switch kind %d", e.Kind)
	}
}

// prim compiles a primitive application. The int fast paths inline the
// overloaded arithmetic/comparison dispatch for the representation the
// elaborated basis produces overwhelmingly often; every fast path
// falls back to the shared Machine implementation on any other
// representation, so semantics (overflow, Div, crashes) are identical.
func (c *comp) prim(e *lambda.Prim) cnode {
	args := c.walkAll(e.Args)
	op := e.Op
	if len(args) == 2 {
		a, b := args[0], args[1]
		switch op {
		case "add":
			return func(m *Machine, fr *Frame) Value {
				va, vb := a(m, fr), b(m, fr)
				if x, ok := va.(IntV); ok {
					if y, ok := vb.(IntV); ok {
						r := int64(x) + int64(y)
						if (int64(x) > 0 && int64(y) > 0 && r < 0) ||
							(int64(x) < 0 && int64(y) < 0 && r >= 0) {
							m.raise(m.TagOverflow, nil)
						}
						return boxInt(r)
					}
				}
				return m.arith(op, va, vb)
			}
		case "sub":
			return func(m *Machine, fr *Frame) Value {
				va, vb := a(m, fr), b(m, fr)
				if x, ok := va.(IntV); ok {
					if y, ok := vb.(IntV); ok {
						r := int64(x) - int64(y)
						if (int64(x) >= 0 && int64(y) < 0 && r < 0) ||
							(int64(x) < 0 && int64(y) > 0 && r >= 0) {
							m.raise(m.TagOverflow, nil)
						}
						return boxInt(r)
					}
				}
				return m.arith(op, va, vb)
			}
		case "lt", "le", "gt", "ge":
			return func(m *Machine, fr *Frame) Value {
				va, vb := a(m, fr), b(m, fr)
				if x, ok := va.(IntV); ok {
					if y, ok := vb.(IntV); ok {
						switch op {
						case "lt":
							return Bool(x < y)
						case "le":
							return Bool(x <= y)
						case "gt":
							return Bool(x > y)
						default:
							return Bool(x >= y)
						}
					}
				}
				return m.compare(op, va, vb)
			}
		case "eq":
			return func(m *Machine, fr *Frame) Value {
				return Bool(Eq(a(m, fr), b(m, fr)))
			}
		case "ne":
			return func(m *Machine, fr *Frame) Value {
				return Bool(!Eq(a(m, fr), b(m, fr)))
			}
		}
	}
	return func(m *Machine, fr *Frame) Value {
		vs := make([]Value, len(args))
		for i, a := range args {
			vs[i] = a(m, fr)
		}
		return m.prim(op, vs)
	}
}

// Fork returns a machine sharing this machine's basis identities (the
// builtin exception tags) and engine, with zeroed step count and no
// recorder — the per-goroutine evaluation context the parallel exec
// stage runs units on. Values built by a fork are interchangeable with
// the parent's: identity-bearing comparisons (exception tags) work
// because the basis tags are shared, not copied. The caller sets
// Stdout and Obs before use.
func (m *Machine) Fork() *Machine {
	f := *m
	f.Steps = 0
	f.Obs = nil
	f.framePool = nil // never share pooled frames across goroutines
	if m.prof != nil {
		// Profiling is inherited by enablement only: the fork gets its
		// own sample window, countdown, and shadow stack (all per-unit
		// state — resetting them per fork is what makes profiles
		// independent of which goroutine ran which unit), sharing just
		// the immutable-once-registered identity registry.
		f.prof = &machProf{period: m.prof.period, left: m.prof.period, reg: m.prof.reg}
	}
	return &f
}
