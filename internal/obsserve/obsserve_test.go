package obsserve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/watch"
)

func buildOnce(t *testing.T) (*obs.Collector, *core.Manager) {
	t.Helper()
	col := obs.New()
	m := core.NewManager()
	m.Obs = col
	files := []core.File{
		{Name: "a.sml", Source: "structure A = struct val one = 1 end"},
		{Name: "b.sml", Source: "structure B = struct val two = A.one + A.one end"},
	}
	if _, err := m.Build(files); err != nil {
		t.Fatal(err)
	}
	return col, m
}

func get(t *testing.T, srv *Server, path string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	body, _ := io.ReadAll(rr.Result().Body)
	return rr.Code, string(body), rr.Result().Header.Get("Content-Type")
}

// promLine matches a sample line of the text exposition format: a
// metric name, optional labels (histogram buckets carry le), one value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? ((?:[0-9.eE+-]+|NaN|\+Inf|-Inf))$`)

// parseProm validates the exposition text the way a scrape would —
// every line is a comment or a well-formed sample, every sample is
// preceded by its HELP and TYPE (histogram samples by their family's)
// — and returns the samples keyed by name plus labels.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	announced := map[string]bool{}
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("line %d: malformed comment %q", i+1, line)
			}
			announced[f[2]] = true
			if strings.HasPrefix(line, "# TYPE ") && f[3] == "histogram" {
				// A histogram family announces its sample names implicitly.
				for _, s := range []string{"_bucket", "_sum", "_count"} {
					announced[f[2]+s] = true
				}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid sample line: %q", i+1, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		if !announced[name] {
			t.Fatalf("line %d: sample %s has no HELP/TYPE", i+1, name)
		}
		key := name + labels
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate sample for %s", i+1, key)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", i+1, valStr, err)
		}
		samples[key] = v
	}
	return samples
}

// TestMetricsMatchReport is the acceptance check: on a process that
// has run exactly one build, every /metrics counter equals that
// build's -report json counter delta, and every histogram family on
// the wire equals the collector's snapshot bucket for bucket.
func TestMetricsMatchReport(t *testing.T) {
	col, m := buildOnce(t)
	// A watch-style latency histogram must round-trip too.
	h := col.Histogram("watch.latency_seconds")
	for _, v := range []float64{0.0004, 0.0042, 0.0041, 0.25, 100} {
		h.Observe(v)
	}
	srv := New(col, nil)
	code, body, ctype := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	samples := parseProm(t, body)

	rep := m.Report("g.cm")
	if len(rep.Counters) == 0 {
		t.Fatal("report has no counters; nothing to compare")
	}
	for name, want := range rep.Counters {
		got, ok := samples[obs.PromName(name)]
		if !ok {
			t.Errorf("counter %s missing from /metrics", name)
			continue
		}
		if int64(got) != want {
			t.Errorf("counter %s: /metrics %v, report %d", name, got, want)
		}
	}
	if samples["irm_builds_total"] != 1 {
		t.Errorf("irm_builds_total = %v, want 1", samples["irm_builds_total"])
	}
	if _, ok := samples["irm_uptime_seconds"]; !ok {
		t.Error("irm_uptime_seconds missing")
	}
	// The execute phase must be visible on the wire, including the
	// compiled-engine and parallel-exec counters (DESIGN.md §4d).
	for _, name := range []string{
		"irm_exec_units", "irm_exec_apply_ns",
		"irm_code_compiles", "irm_code_compile_ns", "irm_code_bytes",
		"irm_exec_parallelism_max", "irm_dynenv_views",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("%s missing from /metrics", name)
		}
	}

	// Histogram parity: the exposition's cumulative buckets, sum, and
	// count must equal the snapshot's.
	snap := h.Snapshot()
	pn := obs.PromName(snap.Name)
	if got := samples[pn+"_count"]; uint64(got) != snap.Count {
		t.Errorf("%s_count = %v, snapshot %d", pn, got, snap.Count)
	}
	if got := samples[pn+"_sum"]; got != snap.Sum {
		t.Errorf("%s_sum = %v, snapshot %v", pn, got, snap.Sum)
	}
	var cum uint64
	for i, b := range snap.Bounds {
		cum += snap.Counts[i]
		key := pn + `_bucket{le="` + strconv.FormatFloat(b, 'g', -1, 64) + `"}`
		if got, ok := samples[key]; !ok || uint64(got) != cum {
			t.Errorf("%s = %v (present %v), snapshot cumulative %d", key, got, ok, cum)
		}
	}
	if got := samples[pn+`_bucket{le="+Inf"}`]; uint64(got) != snap.Count {
		t.Errorf("%s +Inf bucket = %v, snapshot count %d", pn, got, snap.Count)
	}
}

func TestHealthz(t *testing.T) {
	col, _ := buildOnce(t)
	code, body, _ := get(t, New(col, nil), "/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestBuilds(t *testing.T) {
	col, m := buildOnce(t)

	// No ledger: an empty array, not null, not an error.
	_, body, ctype := get(t, New(col, nil), "/builds")
	if strings.TrimSpace(body) != "[]" || ctype != "application/json" {
		t.Fatalf("/builds without ledger = %q (%s)", body, ctype)
	}

	dir := t.TempDir()
	l, err := history.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	recID := history.FromReport(m.Report("g.cm"), m.UnitTimings, 2,
		5*time.Millisecond, time.Unix(1700000000, 0), nil)
	if err := l.Append(recID); err != nil {
		t.Fatal(err)
	}
	code, body, _ := get(t, New(col, l), "/builds")
	if code != 200 {
		t.Fatalf("/builds status %d", code)
	}
	var recs []history.Record
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("/builds not JSON: %v\n%s", err, body)
	}
	if len(recs) != 1 || recs[0].Name != "g.cm" || recs[0].Schema != history.Schema {
		t.Fatalf("/builds = %+v", recs)
	}
}

// TestWatchSSE drives the /watch endpoint over a real connection: a
// published hub event must arrive as one `event: iteration` SSE frame
// whose data decodes back to the Event.
func TestWatchSSE(t *testing.T) {
	col, _ := buildOnce(t)

	// Without a hub the route must 404, not hang.
	code, _, _ := get(t, New(col, nil), "/watch")
	if code != 404 {
		t.Fatalf("/watch without hub = %d, want 404", code)
	}

	hub := watch.NewHub()
	srv := New(col, nil)
	srv.Watch = hub
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/watch content type %q", ct)
	}

	want := watch.Event{Schema: watch.EventSchema, Seq: 3, Outcome: watch.OutcomeOK,
		Changed: []string{"u001.sml"}, Compiled: 1, Loaded: 9, LatencyNs: 12345}
	// Publish until the subscription is live (Subscribe happens inside
	// the handler, racing this goroutine).
	pubCtx, pubCancel := context.WithCancel(ctx)
	defer pubCancel()
	go func() {
		for pubCtx.Err() == nil {
			hub.Publish(want)
			time.Sleep(5 * time.Millisecond)
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	sawEventLine := false
	for sc.Scan() {
		line := sc.Text()
		if line == "event: iteration" {
			sawEventLine = true
			continue
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			if !sawEventLine {
				t.Fatalf("data frame without event line: %q", line)
			}
			var got watch.Event
			if err := json.Unmarshal([]byte(data), &got); err != nil {
				t.Fatalf("SSE data not an Event: %v\n%s", err, data)
			}
			if got.Seq != want.Seq || got.Outcome != want.Outcome ||
				got.Compiled != want.Compiled || got.LatencyNs != want.LatencyNs {
				t.Fatalf("SSE event = %+v, want %+v", got, want)
			}
			return // one good frame is the proof
		}
	}
	t.Fatalf("no SSE frame received: %v", sc.Err())
}

func TestPprofMounted(t *testing.T) {
	col, _ := buildOnce(t)
	code, body, _ := get(t, New(col, nil), "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}
