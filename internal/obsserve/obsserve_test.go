package obsserve

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/obs"
)

func buildOnce(t *testing.T) (*obs.Collector, *core.Manager) {
	t.Helper()
	col := obs.New()
	m := core.NewManager()
	m.Obs = col
	files := []core.File{
		{Name: "a.sml", Source: "structure A = struct val one = 1 end"},
		{Name: "b.sml", Source: "structure B = struct val two = A.one + A.one end"},
	}
	if _, err := m.Build(files); err != nil {
		t.Fatal(err)
	}
	return col, m
}

func get(t *testing.T, srv *Server, path string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	body, _ := io.ReadAll(rr.Result().Body)
	return rr.Code, string(body), rr.Result().Header.Get("Content-Type")
}

// promLine matches a sample line of the text exposition format:
// a bare metric name followed by one value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]* (?:[0-9.eE+-]+|NaN)$`)

// parseProm validates the exposition text the way a scrape would —
// every line is a comment or a well-formed sample, every sample is
// preceded by its HELP and TYPE — and returns the samples.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	announced := map[string]bool{}
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("line %d: malformed comment %q", i+1, line)
			}
			announced[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line %d: not a valid sample line: %q", i+1, line)
		}
		f := strings.Fields(line)
		name := f[0]
		if !announced[name] {
			t.Fatalf("line %d: sample %s has no HELP/TYPE", i+1, name)
		}
		if _, dup := samples[name]; dup {
			t.Fatalf("line %d: duplicate sample for %s", i+1, name)
		}
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", i+1, f[1], err)
		}
		samples[name] = v
	}
	return samples
}

// TestMetricsMatchReport is the acceptance check: on a process that
// has run exactly one build, every /metrics counter equals that
// build's -report json counter delta.
func TestMetricsMatchReport(t *testing.T) {
	col, m := buildOnce(t)
	srv := New(col, nil)
	code, body, ctype := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	samples := parseProm(t, body)

	rep := m.Report("g.cm")
	if len(rep.Counters) == 0 {
		t.Fatal("report has no counters; nothing to compare")
	}
	for name, want := range rep.Counters {
		got, ok := samples[obs.PromName(name)]
		if !ok {
			t.Errorf("counter %s missing from /metrics", name)
			continue
		}
		if int64(got) != want {
			t.Errorf("counter %s: /metrics %v, report %d", name, got, want)
		}
	}
	if samples["irm_builds_total"] != 1 {
		t.Errorf("irm_builds_total = %v, want 1", samples["irm_builds_total"])
	}
	if _, ok := samples["irm_uptime_seconds"]; !ok {
		t.Error("irm_uptime_seconds missing")
	}
	// The execute phase must be visible on the wire.
	for _, name := range []string{"irm_exec_units", "irm_exec_apply_ns"} {
		if _, ok := samples[name]; !ok {
			t.Errorf("%s missing from /metrics", name)
		}
	}
}

func TestHealthz(t *testing.T) {
	col, _ := buildOnce(t)
	code, body, _ := get(t, New(col, nil), "/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestBuilds(t *testing.T) {
	col, m := buildOnce(t)

	// No ledger: an empty array, not null, not an error.
	_, body, ctype := get(t, New(col, nil), "/builds")
	if strings.TrimSpace(body) != "[]" || ctype != "application/json" {
		t.Fatalf("/builds without ledger = %q (%s)", body, ctype)
	}

	dir := t.TempDir()
	l, err := history.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	recID := history.FromReport(m.Report("g.cm"), m.UnitTimings, 2,
		5*time.Millisecond, time.Unix(1700000000, 0), nil)
	if err := l.Append(recID); err != nil {
		t.Fatal(err)
	}
	code, body, _ := get(t, New(col, l), "/builds")
	if code != 200 {
		t.Fatalf("/builds status %d", code)
	}
	var recs []history.Record
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("/builds not JSON: %v\n%s", err, body)
	}
	if len(recs) != 1 || recs[0].Name != "g.cm" || recs[0].Schema != history.Schema {
		t.Fatalf("/builds = %+v", recs)
	}
}

func TestPprofMounted(t *testing.T) {
	col, _ := buildOnce(t)
	code, body, _ := get(t, New(col, nil), "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}
