// Package obsserve is the IRM's live telemetry endpoint: a small
// stdlib-only HTTP server that exposes the process's counter registry
// in the Prometheus text exposition format, the Go runtime profiles,
// a liveness probe, and the build-history ledger. It is mounted by
// `irm serve` (a build followed by a blocking server), by
// `irm build -serve :addr` (serve while the build runs, useful for
// profiling a long build live), and as the fallback mux behind the
// compile daemon's /v1 API (`irm daemon`, internal/daemon) — which is
// why PROTOCOL.md §2 documents these routes too, and why the
// docscheck protocol gate scans this package's registrations.
//
// Routes:
//
//	/metrics       counter registry as Prometheus text format (counters
//	               and histograms), plus irm_uptime_seconds and
//	               irm_builds_total
//	/healthz       200 "ok" while the process lives
//	/builds        the history ledger's records as a JSON array
//	/watch         Server-Sent Events stream of watch iterations (one
//	               `event: iteration` per rebuild); 404 unless the
//	               process runs a watch session
//	/debug/sml/profile  the latest profiled build's SML-level execution
//	               profile (?format=json|pprof|folded, default json);
//	               404 unless the process profiles builds (-profile)
//	               and one has completed
//	/debug/pprof/  the standard Go profiles (heap, goroutine, profile,
//	               trace, ...), wired explicitly — importing
//	               net/http/pprof's side effects into DefaultServeMux
//	               would leak the profiles onto any other mux the
//	               process starts
//
// Concurrency: every handler reads through the obs.Collector's, the
// history.Ledger's, or the watch.Hub's own locks; the server adds no
// shared mutable state beyond its start time, set once before Handler
// is called.
package obsserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/watch"
)

// Server holds what the endpoints read. Col is required; Ledger may be
// nil, in which case /builds serves an empty array; Watch may be nil,
// in which case /watch answers 404; Prof may be nil (or empty), in
// which case /debug/sml/profile answers 404.
type Server struct {
	Col    *obs.Collector
	Ledger *history.Ledger
	Watch  *watch.Hub
	Prof   *prof.Live
	Start  time.Time
}

// New wires a server over the collector and (optional) ledger, with
// the uptime clock started now.
func New(col *obs.Collector, ledger *history.Ledger) *Server {
	return &Server{Col: col, Ledger: ledger, Start: time.Now()}
}

// Handler returns the server's mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/builds", s.builds)
	mux.HandleFunc("/watch", s.watch)
	mux.HandleFunc("/debug/sml/profile", s.smlProfile)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Process-level gauges first, then the registry counters (sorted by
	// WritePrometheus), so the two server-synthesized families are easy
	// to spot at the top of a scrape.
	fmt.Fprintf(w, "# HELP irm_uptime_seconds Seconds since the telemetry server started.\n")
	fmt.Fprintf(w, "# TYPE irm_uptime_seconds gauge\n")
	fmt.Fprintf(w, "irm_uptime_seconds %g\n", time.Since(s.Start).Seconds())
	fmt.Fprintf(w, "# HELP irm_builds_total Builds recorded by this process's collector.\n")
	fmt.Fprintf(w, "# TYPE irm_builds_total counter\n")
	fmt.Fprintf(w, "irm_builds_total %d\n", s.Col.Builds())
	s.Col.WritePrometheus(w)
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) builds(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	recs := []history.Record{}
	if s.Ledger != nil {
		got, _, err := s.Ledger.ReadAll()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if got != nil {
			recs = got
		}
	}
	json.NewEncoder(w).Encode(recs)
}

// smlProfile serves the latest profiled build's SML-level execution
// profile. ?format=pprof emits the profile.proto encoding (what
// `go tool pprof` loads), ?format=folded the folded-stack text
// (flamegraph input), anything else the irm-profile/1 JSON report.
// The bytes are produced by the same prof.Profile writers the CLI
// uses, so a daemon scrape and a local `irm build -profile` of the
// same sources are byte-identical.
func (s *Server) smlProfile(w http.ResponseWriter, r *http.Request) {
	if s.Prof == nil {
		http.Error(w, "this process does not profile builds", http.StatusNotFound)
		return
	}
	name, p := s.Prof.Get()
	if p == nil {
		http.Error(w, "no profiled build has completed", http.StatusNotFound)
		return
	}
	switch r.URL.Query().Get("format") {
	case "pprof":
		w.Header().Set("Content-Type", "application/octet-stream")
		p.WritePprof(w)
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		p.WriteFolded(w)
	default:
		w.Header().Set("Content-Type", "application/json")
		p.Report(name).WriteJSON(w)
	}
}

// watch streams watch iterations as Server-Sent Events: one
// `event: iteration` frame per rebuild, the Event JSON as data. The
// stream lives until the client disconnects or the process exits;
// events published while the client's buffer is full are dropped by the
// hub, never queued against the watch loop.
func (s *Server) watch(w http.ResponseWriter, r *http.Request) {
	if s.Watch == nil {
		http.Error(w, "no watch session in this process", http.StatusNotFound)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	events, cancel := s.Watch.Subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: iteration\ndata: %s\n\n", data)
			flusher.Flush()
		}
	}
}
