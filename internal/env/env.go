// Package env implements static environments (§3–§4 of the paper):
// layered, ordered maps from names to the semantic objects of
// elaboration — value bindings, type constructors, structures,
// signatures, and functors.
//
// Environments are layered (a child extends a parent without copying it)
// and iterate deterministically in definition order, which the hasher
// and pickler rely on. The paper's "indexed" environments — stamp-keyed
// maps used by the rehydrater to find real objects for stubs — are built
// from these by internal/pickle.
//
// Concurrency: an Env is not safe for concurrent mutation, but a
// frozen Env — one that is no longer written — may be read from any
// number of goroutines. The parallel scheduler layers each unit's
// private env over frozen dependency envs on exactly this contract.
package env

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/pid"
	"repro/internal/stamps"
	"repro/internal/types"
)

// Namespace distinguishes the five SML namespaces.
type Namespace int

// Namespaces.
const (
	NSVal Namespace = iota
	NSTycon
	NSStr
	NSSig
	NSFct
)

func (ns Namespace) String() string {
	switch ns {
	case NSVal:
		return "value"
	case NSTycon:
		return "type"
	case NSStr:
		return "structure"
	case NSSig:
		return "signature"
	case NSFct:
		return "functor"
	}
	return "?"
}

// ValBind is the static information for a value identifier: its type
// scheme, its constructor status, and how its runtime value is located.
type ValBind struct {
	Scheme *types.Scheme
	Con    *types.DataCon // non-nil for (data or exception) constructors
	// Slot is the index of this binding's value within the runtime
	// record of the enclosing structure or unit export vector; -1 when
	// the binding has no runtime content (ordinary data constructors).
	Slot int
	// ExportPid designates the binding's value in the dynamic
	// environment once its unit has been compiled (zero for local and
	// in-progress bindings). Derived from the unit's static pid (§5).
	ExportPid pid.Pid
	// Prim names a built-in primitive; references compile to primops
	// rather than imports. The form "exn:Name" designates a basis
	// exception constructor whose tag lives in the runtime.
	Prim string
	// Overload, when non-empty, marks an overloaded primitive (such as
	// +): each use instantiates the scheme's single bound variable with
	// a fresh variable constrained to the listed tycons.
	Overload []*types.Tycon
}

// IsExnCon reports whether the binding is an exception constructor.
func (vb *ValBind) IsExnCon() bool { return vb.Con != nil && vb.Con.IsExn }

// StrBind is the static information for a structure identifier.
type StrBind struct {
	Str       *Structure
	Slot      int
	ExportPid pid.Pid
}

// SigBind binds a signature identifier. Signatures are kept as abstract
// syntax plus a closure environment over their free identifiers, and
// re-elaborated into a fresh template at every use; this is what lets
// `where type` and sharing constraints realize formal tycons by local
// mutation.
type SigBind struct {
	Name    string
	Def     ast.SigExp
	Closure *Env
}

// FctBind binds a functor identifier. Functors have no runtime content
// in this system: application re-elaborates the body (see
// internal/elab), which is what creates the paper's
// inter-implementation dependencies.
type FctBind struct {
	Fct *Functor
}

// Structure is an elaborated structure: a stamped environment of
// components plus the size of its runtime record.
type Structure struct {
	Stamp stamps.Stamp
	Env   *Env
	// NumSlots is the width of the runtime record holding the
	// structure's dynamic components (vals, exceptions, substructures).
	NumSlots int
}

// Signature is an elaborated signature template. Env holds the specs:
// formal tycons (types.KindFormal), value specs (schemes over formals,
// with Slot giving the coerced layout), and substructure specs
// (StrBind whose Structure is itself formal). Formals lists every
// flexible tycon of the template in creation order.
type Signature struct {
	Stamp   stamps.Stamp
	Name    string // for diagnostics; "" for anonymous sigs
	Env     *Env
	Formals []*types.Tycon
	// NumSlots is the runtime record width of a structure coerced to
	// this signature.
	NumSlots int
}

// Functor is an elaborated functor. The body, parameter signature, and
// result signature are kept as abstract syntax and re-elaborated at
// every application — the source of inter-implementation dependence
// that motivates cutoff recompilation. Closure holds the
// definition-time bindings for exactly the free identifiers of those
// three pieces of syntax.
type Functor struct {
	Stamp     stamps.Stamp
	Name      string
	ParamName string
	ParamSig  ast.SigExp
	ResultSig ast.SigExp // nil if unascribed
	Opaque    bool
	Body      ast.StrExp
	Closure   *Env
}

// Entry records one binding in definition order.
type Entry struct {
	NS   Namespace
	Name string
}

// Env is a layered, ordered static environment.
type Env struct {
	parent *Env
	vals   map[string]*ValBind
	tycons map[string]*types.Tycon
	strs   map[string]*StrBind
	sigs   map[string]*SigBind
	fcts   map[string]*FctBind
	order  []Entry
}

// New returns an empty environment layered atop parent (nil for the
// root).
func New(parent *Env) *Env {
	return &Env{
		parent: parent,
		vals:   map[string]*ValBind{},
		tycons: map[string]*types.Tycon{},
		strs:   map[string]*StrBind{},
		sigs:   map[string]*SigBind{},
		fcts:   map[string]*FctBind{},
	}
}

// Parent returns the environment this one extends.
func (e *Env) Parent() *Env { return e.parent }

// DefineVal binds a value identifier.
func (e *Env) DefineVal(name string, vb *ValBind) {
	if _, shadowed := e.vals[name]; !shadowed {
		e.order = append(e.order, Entry{NSVal, name})
	}
	e.vals[name] = vb
}

// DefineTycon binds a type constructor.
func (e *Env) DefineTycon(name string, tc *types.Tycon) {
	if _, shadowed := e.tycons[name]; !shadowed {
		e.order = append(e.order, Entry{NSTycon, name})
	}
	e.tycons[name] = tc
}

// DefineStr binds a structure identifier.
func (e *Env) DefineStr(name string, sb *StrBind) {
	if _, shadowed := e.strs[name]; !shadowed {
		e.order = append(e.order, Entry{NSStr, name})
	}
	e.strs[name] = sb
}

// DefineSig binds a signature identifier.
func (e *Env) DefineSig(name string, sb *SigBind) {
	if _, shadowed := e.sigs[name]; !shadowed {
		e.order = append(e.order, Entry{NSSig, name})
	}
	e.sigs[name] = sb
}

// DefineFct binds a functor identifier.
func (e *Env) DefineFct(name string, fb *FctBind) {
	if _, shadowed := e.fcts[name]; !shadowed {
		e.order = append(e.order, Entry{NSFct, name})
	}
	e.fcts[name] = fb
}

// LookupVal finds a value binding, searching outward through layers.
func (e *Env) LookupVal(name string) (*ValBind, bool) {
	for env := e; env != nil; env = env.parent {
		if vb, ok := env.vals[name]; ok {
			return vb, true
		}
	}
	return nil, false
}

// LookupTycon finds a type constructor.
func (e *Env) LookupTycon(name string) (*types.Tycon, bool) {
	for env := e; env != nil; env = env.parent {
		if tc, ok := env.tycons[name]; ok {
			return tc, true
		}
	}
	return nil, false
}

// LookupStr finds a structure binding.
func (e *Env) LookupStr(name string) (*StrBind, bool) {
	for env := e; env != nil; env = env.parent {
		if sb, ok := env.strs[name]; ok {
			return sb, true
		}
	}
	return nil, false
}

// LookupSig finds a signature binding.
func (e *Env) LookupSig(name string) (*SigBind, bool) {
	for env := e; env != nil; env = env.parent {
		if sb, ok := env.sigs[name]; ok {
			return sb, true
		}
	}
	return nil, false
}

// LookupFct finds a functor binding.
func (e *Env) LookupFct(name string) (*FctBind, bool) {
	for env := e; env != nil; env = env.parent {
		if fb, ok := env.fcts[name]; ok {
			return fb, true
		}
	}
	return nil, false
}

// LocalVal looks up without searching parents.
func (e *Env) LocalVal(name string) (*ValBind, bool) {
	vb, ok := e.vals[name]
	return vb, ok
}

// LocalTycon looks up without searching parents.
func (e *Env) LocalTycon(name string) (*types.Tycon, bool) {
	tc, ok := e.tycons[name]
	return tc, ok
}

// LocalStr looks up without searching parents.
func (e *Env) LocalStr(name string) (*StrBind, bool) {
	sb, ok := e.strs[name]
	return sb, ok
}

// LocalSig looks up without searching parents.
func (e *Env) LocalSig(name string) (*SigBind, bool) {
	sb, ok := e.sigs[name]
	return sb, ok
}

// LocalFct looks up without searching parents.
func (e *Env) LocalFct(name string) (*FctBind, bool) {
	fb, ok := e.fcts[name]
	return fb, ok
}

// Order returns the entries defined in this layer, in definition order
// with shadowed re-definitions collapsed to their first position.
func (e *Env) Order() []Entry { return e.order }

// Len reports the number of entries in this layer.
func (e *Env) Len() int { return len(e.order) }

// CopyInto re-defines every binding of this layer (not its parents) into
// dst, preserving order. Used by `open` and signature template copying.
func (e *Env) CopyInto(dst *Env) {
	for _, ent := range e.order {
		switch ent.NS {
		case NSVal:
			dst.DefineVal(ent.Name, e.vals[ent.Name])
		case NSTycon:
			dst.DefineTycon(ent.Name, e.tycons[ent.Name])
		case NSStr:
			dst.DefineStr(ent.Name, e.strs[ent.Name])
		case NSSig:
			dst.DefineSig(ent.Name, e.sigs[ent.Name])
		case NSFct:
			dst.DefineFct(ent.Name, e.fcts[ent.Name])
		}
	}
}

// String summarizes the layer for diagnostics.
func (e *Env) String() string {
	return fmt.Sprintf("env(%d bindings%s)", len(e.order), func() string {
		if e.parent != nil {
			return ", layered"
		}
		return ""
	}())
}
