package env

import (
	"testing"

	"repro/internal/types"
)

func vb() *ValBind { return &ValBind{Scheme: types.MonoScheme(types.Unit()), Slot: -1} }

func TestDefineLookup(t *testing.T) {
	e := New(nil)
	b := vb()
	e.DefineVal("x", b)
	got, ok := e.LookupVal("x")
	if !ok || got != b {
		t.Fatal("lookup failed")
	}
	if _, ok := e.LookupVal("y"); ok {
		t.Fatal("phantom binding")
	}
}

func TestLayering(t *testing.T) {
	parent := New(nil)
	pb := vb()
	parent.DefineVal("x", pb)
	parent.DefineVal("y", vb())

	child := New(parent)
	cb := vb()
	child.DefineVal("x", cb)

	if got, _ := child.LookupVal("x"); got != cb {
		t.Error("child does not shadow parent")
	}
	if got, _ := child.LookupVal("y"); got == nil {
		t.Error("parent binding not visible")
	}
	if got, _ := parent.LookupVal("x"); got != pb {
		t.Error("parent perturbed by child")
	}
	// Local lookup must not search parents.
	if _, ok := child.LocalVal("y"); ok {
		t.Error("LocalVal searched parent")
	}
}

func TestOrderPreserved(t *testing.T) {
	e := New(nil)
	e.DefineVal("a", vb())
	e.DefineTycon("t", &types.Tycon{Name: "t"})
	e.DefineVal("b", vb())
	e.DefineStr("S", &StrBind{Str: &Structure{Env: New(nil)}})

	order := e.Order()
	want := []Entry{{NSVal, "a"}, {NSTycon, "t"}, {NSVal, "b"}, {NSStr, "S"}}
	if len(order) != len(want) {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %v, want %v", i, order[i], want[i])
		}
	}
}

func TestShadowingCollapsesOrder(t *testing.T) {
	e := New(nil)
	e.DefineVal("x", vb())
	second := vb()
	e.DefineVal("x", second)
	if len(e.Order()) != 1 {
		t.Errorf("order has %d entries, want 1", len(e.Order()))
	}
	if got, _ := e.LocalVal("x"); got != second {
		t.Error("shadowing did not replace binding")
	}
}

func TestNamespacesIndependent(t *testing.T) {
	e := New(nil)
	e.DefineVal("x", vb())
	e.DefineTycon("x", &types.Tycon{Name: "x"})
	e.DefineStr("x", &StrBind{})
	e.DefineSig("x", &SigBind{Name: "x"})
	e.DefineFct("x", &FctBind{})
	if e.Len() != 5 {
		t.Errorf("len = %d, want 5 (one per namespace)", e.Len())
	}
	if _, ok := e.LookupTycon("x"); !ok {
		t.Error("tycon x lost")
	}
}

func TestCopyInto(t *testing.T) {
	src := New(nil)
	src.DefineVal("a", vb())
	src.DefineVal("b", vb())
	src.DefineTycon("t", &types.Tycon{Name: "t"})

	dst := New(nil)
	dst.DefineVal("pre", vb())
	src.CopyInto(dst)
	if dst.Len() != 4 {
		t.Errorf("dst len %d", dst.Len())
	}
	a1, _ := src.LocalVal("a")
	a2, _ := dst.LocalVal("a")
	if a1 != a2 {
		t.Error("CopyInto copied values instead of sharing bindings")
	}
}

func TestDeepLayering(t *testing.T) {
	e := New(nil)
	bottom := vb()
	e.DefineVal("deep", bottom)
	for i := 0; i < 100; i++ {
		e = New(e)
	}
	got, ok := e.LookupVal("deep")
	if !ok || got != bottom {
		t.Error("deep chain lookup failed")
	}
}

func TestIsExnCon(t *testing.T) {
	plain := vb()
	if plain.IsExnCon() {
		t.Error("plain value is exn con")
	}
	exn := &ValBind{Con: &types.DataCon{IsExn: true}}
	if !exn.IsExnCon() {
		t.Error("exn con not recognized")
	}
	data := &ValBind{Con: &types.DataCon{}}
	if data.IsExnCon() {
		t.Error("data con is exn con")
	}
}
