// Golden pin of the bin-file format and the intrinsic-pid computation
// (DESIGN.md §4f): every unit of the fixed workload.GoldenCorpus must
// produce exactly the pid, bin-content hash, and bin length recorded
// in testdata/binfile_golden.json — at every scheduler width. The file
// is regenerated only deliberately, via `go run ./scripts/bingolden`.
package repro

import (
	"encoding/json"
	"os"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/pickle"
	"repro/internal/pid"
	"repro/internal/workload"
)

// goldenUnit mirrors scripts/bingolden's record.
type goldenUnit struct {
	Project string `json:"project"`
	Name    string `json:"name"`
	StatPid string `json:"stat_pid"`
	BinHash string `json:"bin_hash"`
	BinLen  int    `json:"bin_len"`
}

func loadGolden(t *testing.T) map[string]goldenUnit {
	t.Helper()
	data, err := os.ReadFile("testdata/binfile_golden.json")
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var units []goldenUnit
	if err := json.Unmarshal(data, &units); err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}
	byKey := make(map[string]goldenUnit, len(units))
	for _, u := range units {
		byKey[u.Project+"/"+u.Name] = u
	}
	return byKey
}

// TestBinfileGolden builds the corpus at several worker widths, under
// both execution engines, and checks every bin file and pid against
// the golden record: the single-pass pickle+hash must be byte-for-byte
// the two-pass encoding, the parallel scheduler must not perturb a
// single output byte, and the engine an executable ran under must not
// show in any persisted artifact (the -exec contract, DESIGN.md §4j).
func TestBinfileGolden(t *testing.T) {
	golden := loadGolden(t)
	corpus := workload.GoldenCorpus()
	names := make([]string, 0, len(corpus))
	for n := range corpus {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, engine := range []interp.Engine{interp.EngineClosure, interp.EngineTree} {
		for _, jobs := range []int{1, 8} {
			seen := 0
			for _, pname := range names {
				p := corpus[pname]
				store := core.NewMemStore()
				m := core.NewManager()
				m.Store = store
				m.Jobs = jobs
				m.Engine = engine
				// A private cache keeps the run self-contained; outputs must
				// not depend on cache state either way.
				m.EnvCache = pickle.NewEnvCache(0)
				if _, err := m.Build(p.Files); err != nil {
					t.Fatalf("exec=%s jobs=%d %s: %v", engine, jobs, pname, err)
				}
				for _, f := range p.Files {
					e, err := store.Load(f.Name)
					if err != nil || e == nil {
						t.Fatalf("exec=%s jobs=%d %s/%s: missing entry (%v)",
							engine, jobs, pname, f.Name, err)
					}
					want, ok := golden[pname+"/"+f.Name]
					if !ok {
						t.Fatalf("%s/%s: not in golden file (regenerate with scripts/bingolden?)",
							pname, f.Name)
					}
					if got := e.StatPid.String(); got != want.StatPid {
						t.Errorf("exec=%s jobs=%d %s/%s: stat pid %s, golden %s",
							engine, jobs, pname, f.Name, got, want.StatPid)
					}
					if got := pid.HashBytes(e.Bin).String(); got != want.BinHash {
						t.Errorf("exec=%s jobs=%d %s/%s: bin hash %s, golden %s (len %d vs %d)",
							engine, jobs, pname, f.Name, got, want.BinHash, len(e.Bin), want.BinLen)
					}
					if len(e.Bin) != want.BinLen {
						t.Errorf("exec=%s jobs=%d %s/%s: bin length %d, golden %d",
							engine, jobs, pname, f.Name, len(e.Bin), want.BinLen)
					}
					seen++
				}
			}
			if seen != len(golden) {
				t.Errorf("exec=%s jobs=%d: corpus has %d units, golden file %d",
					engine, jobs, seen, len(golden))
			}
		}
	}
}
