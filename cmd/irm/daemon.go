package main

// `irm daemon`: the persistent compile service, and the client-mode
// dispatch `irm build` uses to reach it. The daemon opens the store
// once, holds its lock (with the heartbeat) for the whole lifetime,
// keeps the process-wide EnvCache warm, and serves PROTOCOL.md's
// irm-daemon/1 endpoints on a unix socket beside the store — plus,
// with -addr, the same mux on TCP for scrapers. SIGTERM (or POST
// /v1/drain) drains gracefully: admitted requests finish, the socket
// is removed, the lock released.

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/interp"
	"repro/internal/obs"
)

func cmdDaemon(args []string) {
	fs := flag.NewFlagSet("daemon", flag.ExitOnError)
	storeDir := fs.String("store", ".irm-store", "bin cache directory the daemon serves")
	socketFlag := fs.String("socket", "", "unix socket path (default: .irm/daemon.sock beside the store)")
	addr := fs.String("addr", "", "also serve the mux on this TCP address (for /metrics scrapers)")
	jobs := fs.Int("j", 0, "default parallel build workers (0 = one per core)")
	policy := fs.String("policy", "cutoff", "default recompilation policy: cutoff or timestamp")
	queue := fs.Int("queue", daemon.DefaultMaxQueue, "admission queue bound (further requests get 503 queue_full)")
	historyFlag := fs.String("history", "", "ledger directory ('' = beside the store, 'off' = disabled)")
	profFlag := fs.Bool("profile", false, "profile every build; serve the latest on /debug/sml/profile")
	profPeriod := fs.Uint64("profile-period", 0, "sampling period in interpreter steps (implies -profile; 0 = default)")
	verbose := fs.Bool("v", false, "log one line per request and build")
	fs.Parse(args)

	pol := core.PolicyCutoff
	switch *policy {
	case "cutoff":
	case "timestamp":
		pol = core.PolicyTimestamp
	default:
		usage()
	}

	store, err := core.NewDirStore(*storeDir)
	if err != nil {
		fatal(err)
	}
	col := obs.New()
	store.Obs = col
	// Hold the store lock for the daemon's whole lifetime; the
	// heartbeat keeps the lockfile fresh through idle stretches, so a
	// quiet daemon is never stale-stolen by a CLI build.
	release, err := store.Lock()
	if err != nil {
		fatal(err)
	}
	defer release()

	socket := daemon.ResolveSocket(*socketFlag, *storeDir)
	if err := os.MkdirAll(filepath.Dir(socket), 0o755); err != nil {
		fatal(err)
	}
	// A leftover socket file from a crashed daemon would make Listen
	// fail. A *live* daemon also holds the store lock, so reaching this
	// point means no live daemon owns the store — any existing socket
	// file is stale and safe to remove.
	if _, err := os.Stat(socket); err == nil {
		os.Remove(socket)
	}
	ln, err := net.Listen("unix", socket)
	if err != nil {
		fatal(err)
	}

	ledger := openLedger(*historyFlag, *storeDir)
	opts := daemon.Options{
		Store:    store,
		StoreDir: *storeDir,
		Col:      col,
		Ledger:   ledger,
		Policy:   pol,
		Jobs:     *jobs,
		MaxQueue: *queue,
	}
	if *profFlag || *profPeriod > 0 {
		opts.ProfilePeriod = *profPeriod
		if opts.ProfilePeriod == 0 {
			opts.ProfilePeriod = interp.DefaultProfilePeriod
		}
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	srv := daemon.New(opts)
	srv.Start()
	fmt.Fprintf(os.Stderr, "irm: daemon listening on %s\n", socket)
	go http.Serve(ln, srv.Handler())
	if *addr != "" {
		tln, err := net.Listen("tcp", *addr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "irm: listening on %s\n", tln.Addr())
		go http.Serve(tln, srv.Handler())
	}

	// Run until SIGTERM/SIGINT or a client-initiated POST /v1/drain,
	// then drain: admission stops, admitted requests finish, and the
	// store is left byte-identical to the same builds run sequentially.
	// Both paths end in the same teardown — listener closed, socket
	// removed, store lock released (deferred), exit 0 — per PROTOCOL.md
	// §8. Drain is idempotent, so a signal after a drain request is
	// fine.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Fprintln(os.Stderr, "irm: daemon draining")
		srv.Drain()
	case <-srv.Done():
		// /v1/drain already ran the drain to completion; only the
		// teardown is left.
		fmt.Fprintln(os.Stderr, "irm: daemon draining")
	}
	ln.Close()
	os.Remove(socket)
	st := srv.Status()
	fmt.Fprintf(os.Stderr, "irm: daemon drained (%d requests, %d builds, %d coalesced)\n",
		st.Requests, st.Builds, st.Coalesced)
}

// dialDaemon resolves the daemon socket for a store and probes it.
// Returns nil when no live, protocol-compatible daemon answers —
// callers fall back to the in-process build path.
func dialDaemon(socketFlag, storeDir string) *daemon.Client {
	socket := daemon.ResolveSocket(socketFlag, storeDir)
	c := daemon.NewClient(socket)
	if _, err := c.Probe(); err != nil {
		return nil
	}
	return c
}

// buildViaDaemon dispatches one build to the daemon and renders the
// streamed frames exactly like an in-process build would: program
// output to stdout as it happens, explain records to stderr, and the
// text or JSON summary from the terminal report frame.
func buildViaDaemon(c *daemon.Client, groupPath, policy string, jobs int,
	explain bool, report string) error {

	abs, err := filepath.Abs(groupPath)
	if err != nil {
		return err
	}
	hostname, _ := os.Hostname()
	var rep *obs.Report
	err = c.Build(daemon.BuildRequest{
		Group:   abs,
		Policy:  policy,
		Jobs:    jobs,
		Explain: explain,
		Client:  fmt.Sprintf("irm-build/%s/%d", hostname, os.Getpid()),
	}, func(f daemon.Frame) error {
		switch f.Type {
		case daemon.FrameOutput:
			os.Stdout.WriteString(f.Data)
		case daemon.FrameExplain:
			if explain && f.Explain != nil {
				if err := obs.WriteExplainJSONL(os.Stderr, []obs.Explain{*f.Explain}); err != nil {
					return err
				}
			}
		case daemon.FrameReport:
			rep = f.Report
		}
		return nil
	})
	if err != nil {
		return err
	}
	if rep == nil {
		return fmt.Errorf("daemon stream carried no report")
	}
	if report == "json" {
		writeJSONLine(os.Stdout, rep)
		return nil
	}
	printReportSummary(rep)
	return nil
}

// printReportSummary renders the classic two-line build summary from a
// report object — the daemon client's equivalent of the local path's
// Stats printf, byte-identical for the same build.
func printReportSummary(rep *obs.Report) {
	fmt.Printf("%s: %d units — parsed %d, compiled %d, loaded %d, cutoffs %d, corrupt %d, recovered %d\n",
		rep.Name, rep.Units, rep.Parsed, rep.Compiled, rep.Loaded, rep.Cutoffs,
		rep.Corrupt, rep.Recovered)
	fmt.Printf("  compile %v, hash %v, pickle %v, load %v, exec %v\n",
		time.Duration(rep.TimingsNs["compile"]), time.Duration(rep.TimingsNs["hash"]),
		time.Duration(rep.TimingsNs["pickle"]), time.Duration(rep.TimingsNs["load"]),
		time.Duration(rep.TimingsNs["exec"]))
}
