package main

// `irm watch`: the continuous rebuild loop. The command acquires the
// store lock once for the whole session (the lock heartbeat keeps it
// fresh through quiet periods), then hands the Manager an Unlocked view
// of the store so per-build re-acquisition cannot deadlock against the
// session's own hold.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/obsserve"
	"repro/internal/watch"
	"repro/internal/workload"
)

func cmdWatch(args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	storeDir := fs.String("store", ".irm-store", "bin cache directory")
	policy := fs.String("policy", "cutoff", "recompilation policy: cutoff or timestamp")
	jobs := fs.Int("j", 0, "parallel build workers (0 = one per core)")
	verbose := fs.Bool("v", false, "log one line per iteration")
	poll := fs.Duration("poll", 200*time.Millisecond, "idle polling period")
	debounce := fs.Duration("debounce", 50*time.Millisecond, "quiet time required after a change before rebuilding")
	serveAddr := fs.String("serve", "", "serve /metrics, /watch (SSE), and /debug/pprof on this address")
	historyFlag := fs.String("history", "", "ledger directory ('' = beside the store, 'off' = disabled)")
	maxBuilds := fs.Int("n", 0, "exit after n rebuilds (0 = run until interrupted)")
	drive := fs.Int("drive", 0, "scripted session: apply n generated edits, one per rebuild, then exit")
	driveSeed := fs.Int64("drive-seed", 1, "seed of the scripted edit stream")
	report := fs.String("report", "", "session summary on exit: text or json")
	execFlag := fs.String("exec", "closure", "execution engine: closure (compiled) or tree (interpreter)")
	groupPath, rest := splitGroupArg(args)
	fs.Parse(rest)
	if groupPath == "" && fs.NArg() == 1 {
		groupPath = fs.Arg(0)
	}
	if groupPath == "" {
		usage()
	}
	if *report != "" && *report != "text" && *report != "json" {
		usage()
	}
	engine, err := interp.ParseEngine(*execFlag)
	if err != nil {
		fatal(err)
	}

	store, err := core.NewDirStore(*storeDir)
	if err != nil {
		fatal(err)
	}
	col := obs.New()
	store.Obs = col
	// Hold the store lock for the whole session: one watcher owns the
	// store, and the heartbeat (core/lock.go) keeps the lockfile fresh
	// however long the session idles. The Manager gets an Unlocked view
	// so its per-build Lock call does not deadlock against our hold.
	release, err := store.Lock()
	if err != nil {
		fatal(err)
	}
	defer release()

	m := &core.Manager{Store: core.Unlocked(store), Stdout: os.Stdout, Obs: col, Jobs: *jobs, Engine: engine}
	switch *policy {
	case "cutoff":
		m.Policy = core.PolicyCutoff
	case "timestamp":
		m.Policy = core.PolicyTimestamp
	default:
		usage()
	}

	ledger := openLedger(*historyFlag, *storeDir)
	hub := watch.NewHub()
	if *serveAddr != "" {
		srv := obsserve.New(col, ledger)
		srv.Watch = hub
		if _, err := startServer(*serveAddr, srv); err != nil {
			fatal(err)
		}
	}

	n := *maxBuilds
	if *drive > 0 {
		n = *drive
	}
	opts := watch.Options{
		Manager:   m,
		GroupPath: groupPath,
		Col:       col,
		Ledger:    ledger,
		Hub:       hub,
		Poll:      *poll,
		Debounce:  *debounce,
		MaxBuilds: n,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	w, err := watch.New(opts)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *drive > 0 {
		go driveEdits(ctx, hub, groupPath, *drive, *driveSeed)
	}

	if err := w.Run(ctx); err != nil {
		fatal(err)
	}
	switch *report {
	case "json":
		writeJSONLine(os.Stdout, w.Report())
	case "text":
		printWatchReport(w.Report())
	}
}

// driveEdits is the scripted "developer": it waits for each iteration's
// event before applying the next edit, so every edit maps onto exactly
// one rebuild and the session's latency histogram gets one sample per
// edit. The driver assumes a workload-generated project (irm gen) in
// the group file's directory.
func driveEdits(ctx context.Context, hub *watch.Hub, groupPath string, n int, seed int64) {
	events, cancel := hub.Subscribe()
	defer cancel()

	// Count the units so the driver picks real files.
	g, err := core.LoadGroup(groupPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "irm: drive:", err)
		return
	}
	d := workload.NewEditDriver(filepath.Dir(groupPath), len(g.Files), seed)

	// The initial build's event (seq 0) starts the clock.
	for done := 0; done <= n; {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-events:
			if !ok {
				return
			}
			if ev.Seq != done {
				continue // stale or duplicate; wait for ours
			}
			done++
			if done > n {
				return // the watcher exits on its own via MaxBuilds
			}
			if _, err := d.Next(); err != nil {
				fmt.Fprintln(os.Stderr, "irm: drive:", err)
				return
			}
		}
	}
}

func printWatchReport(r watch.Report) {
	fmt.Printf("%s: %d iterations (%d rebuilds), %d files polled, %d changed, %d debounced, %d poll errors, %d build errors\n",
		r.Group, r.Iterations, r.Rebuilds, r.FilesPolled, r.ChangedFiles,
		r.Debounced, r.PollErrors, r.BuildErrors)
	fmt.Printf("  edit→rebuild latency: p50 %v  p90 %v  p99 %v  mean %v (%d samples)\n",
		time.Duration(r.Latency.P50Ns).Round(time.Microsecond),
		time.Duration(r.Latency.P90Ns).Round(time.Microsecond),
		time.Duration(r.Latency.P99Ns).Round(time.Microsecond),
		time.Duration(r.Latency.MeanNs).Round(time.Microsecond),
		r.Latency.Count)
}
