// Command irm is the Incremental Recompilation Manager CLI (§6, §9 of
// the paper): it builds library groups described by ".cm"-style files,
// reusing cached bin files whenever the cutoff rule allows, and can
// display dependency graphs and the §5 hash-collision analysis.
//
//	irm build group.cm [-j n] [-store dir] [-policy cutoff|timestamp] [-v]
//	          [-trace out.json] [-jsonl out.jsonl] [-explain] [-report text|json]
//	          [-serve addr] [-history dir|off] [-daemon auto|off|require|socket]
//	          [-exec closure|tree] [-profile base] [-profile-period n]
//	irm profile group.cm [-j n] [-store dir] [-policy p] [-exec closure|tree]
//	          [-n k] [-period n] [-o base]
//	irm daemon [-store dir] [-socket path] [-addr host:port] [-j n] [-policy p]
//	          [-queue n] [-history dir|off] [-profile] [-profile-period n] [-v]
//	irm watch group.cm [-j n] [-store dir] [-policy p] [-poll d] [-debounce d]
//	          [-serve addr] [-history dir|off] [-n k] [-drive k] [-report text|json] [-v]
//	irm serve [group.cm] [-addr host:port] [-store dir] [-j n] [-history dir|off]
//	irm history [-store dir | -dir ledgerdir] [-n k] [-window w] [-threshold t] [-since d]
//	irm top [-store dir | -dir ledgerdir] [-by cost|exec|fn] [-n k] [-since d]
//	irm gen [-dir d] [-units n] [-lines n] [-seed n] [-shape s]
//	irm bench [-out BENCH_irm.json] [-units n] [-lines n] [-seed n] [-j n] [-exec closure|tree]
//	irm deps  group.cm
//	irm collision [-pids n]
//
// -j sets the parallel scheduler's worker count (0, the default, means
// one worker per core). Whatever -j, a build's outputs — bin files,
// stats, explain records — are deterministic; see DESIGN.md §4e.
//
// -exec selects the execution engine: closure (default) runs units as
// compiled Go closures with array-indexed variable frames, tree falls
// back to the direct tree-walking interpreter. Both produce identical
// bins, values, and output (DESIGN.md §4j); tree forces the in-process
// build path, bypassing any running daemon.
//
// Profiling: -profile base turns on the deterministic SML-level
// execution profiler (DESIGN.md §4k): one stack sample every
// -profile-period interpreter steps (default 256), attributed to SML
// function identities, written as base.json (the irm-profile/1
// report), base.folded (flamegraph folded-stack text), and base.pb
// (pprof profile.proto — `go tool pprof base.pb`). `irm profile` is
// the one-shot variant that prints the hot-function table to stdout.
// Sampling is step-based, not wall-clock, so the same sources yield
// byte-identical reports at any -j and under either -exec engine;
// profiling never changes build outputs.
//
// Telemetry: -trace writes the build's span tree as Chrome
// trace_event JSON (load it in chrome://tracing or Perfetto), -jsonl
// the same plus explain records and counters as JSON lines, -explain
// streams one rebuild-decision record per unit to stderr, and
// -report json replaces the human summary with a machine-readable
// report object on the last line of stdout.
//
// Continuous observability: every build appends one summary record to
// the crash-safe history ledger beside the store (disable with
// -history off); `irm history` renders the ledger as a trend table
// and flags wall-time regressions against the trailing median, `irm
// top` ranks units by accumulated cost (both take -since to restrict
// to recent records), and `irm serve` (or `irm build -serve addr`)
// exposes /metrics in Prometheus text format, /debug/pprof, /healthz,
// and /builds over HTTP while the process runs.
//
// `irm daemon` is the persistent multi-client compile service
// (PROTOCOL.md): it opens the store once, holds the lock for its whole
// lifetime, keeps the rehydration cache warm, and serves irm-daemon/1
// requests on a unix socket beside the store. While a daemon runs,
// `irm build` against the same store dispatches to it transparently
// (requests for identical work coalesce into one build); without one,
// builds run in-process exactly as before. -daemon controls dispatch:
// auto (default), off, require, or an explicit socket path;
// $IRM_DAEMON_SOCKET overrides the derived location.
//
// `irm watch` is the continuous rebuild loop: it polls the group's
// sources for changes and rebuilds incrementally on every edit,
// holding the store lock for the whole session. Each iteration lands
// in the ledger, in the watch.latency_seconds histogram (-serve
// exposes it on /metrics, plus a live /watch SSE event stream), and —
// with -report — in an irm-watch/1 session summary with p50/p90/p99
// edit→rebuild latency. -drive n runs a scripted n-edit session
// against a workload-generated project (see `irm gen`), the harness
// CI's watch smoke test uses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/depend"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/obsserve"
	"repro/internal/prof"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		cmdBuild(os.Args[2:])
	case "daemon":
		cmdDaemon(os.Args[2:])
	case "bench":
		cmdBench(os.Args[2:])
	case "watch":
		cmdWatch(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "history":
		cmdHistory(os.Args[2:])
	case "top":
		cmdTop(os.Args[2:])
	case "profile":
		cmdProfile(os.Args[2:])
	case "gen":
		cmdGen(os.Args[2:])
	case "deps":
		cmdDeps(os.Args[2:])
	case "show":
		cmdShow(os.Args[2:])
	case "collision":
		cmdCollision(os.Args[2:])
	default:
		usage()
	}
}

// cmdShow compiles the named source files in order and prints each
// unit's interface — the per-unit "interface" view of §6.
func cmdShow(args []string) {
	if len(args) == 0 {
		usage()
	}
	session, err := compiler.NewSession(os.Stdout)
	if err != nil {
		fatal(err)
	}
	for _, path := range args {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		u, err := session.Run(path, string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Print(compiler.Describe(u))
		fmt.Println()
	}
}

// splitGroupArg accepts the group file either before or after the
// flags (Go's flag package stops at the first positional argument).
func splitGroupArg(args []string) (group string, rest []string) {
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		return args[0], args[1:]
	}
	return "", args
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  irm build group.cm [-j n] [-store dir] [-policy cutoff|timestamp] [-v]
            [-trace out.json] [-jsonl out.jsonl] [-explain] [-report text|json]
            [-serve addr] [-history dir|off] [-daemon auto|off|require|socket]
            [-exec closure|tree] [-profile base] [-profile-period n]
  irm profile group.cm [-j n] [-store dir] [-policy p] [-exec closure|tree]
            [-n k] [-period n] [-o base]
  irm daemon [-store dir] [-socket path] [-addr host:port] [-j n] [-policy p]
            [-queue n] [-history dir|off] [-profile] [-profile-period n] [-v]
  irm watch group.cm [-j n] [-store dir] [-policy p] [-poll d] [-debounce d]
            [-serve addr] [-history dir|off] [-n k] [-drive k] [-report text|json]
            [-exec closure|tree] [-v]
  irm serve [group.cm] [-addr host:port] [-store dir] [-policy p] [-j n] [-history dir|off]
  irm history [-store dir | -dir ledgerdir] [-n k] [-window w] [-threshold t] [-since d]
  irm top [-store dir | -dir ledgerdir] [-by cost|exec|fn] [-n k] [-since d]
  irm gen [-dir d] [-units n] [-lines n] [-seed n] [-shape s]
  irm bench [-out BENCH_irm.json] [-units n] [-lines n] [-seed n] [-j n] [-exec closure|tree]
  irm deps  group.cm
  irm show  file.sml ...
  irm collision [-pids n]`)
	os.Exit(2)
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	storeDir := fs.String("store", ".irm-store", "bin cache directory")
	policy := fs.String("policy", "cutoff", "recompilation policy: cutoff or timestamp")
	jobs := fs.Int("j", 0, "parallel build workers (0 = one per core)")
	verbose := fs.Bool("v", false, "log per-unit actions")
	tracePath := fs.String("trace", "", "write Chrome trace_event JSON to this file")
	jsonlPath := fs.String("jsonl", "", "write spans, explains, and counters as JSON lines to this file")
	explain := fs.Bool("explain", false, "stream one rebuild-decision JSON record per unit to stderr")
	report := fs.String("report", "text", "build summary format: text or json")
	serveAddr := fs.String("serve", "", "serve /metrics and /debug/pprof on this address while the build runs")
	historyFlag := fs.String("history", "", "ledger directory ('' = beside the store, 'off' = disabled)")
	daemonMode := fs.String("daemon", "auto", "daemon dispatch: auto, off, require, or a socket path")
	execFlag := fs.String("exec", "closure", "execution engine: closure (compiled) or tree (interpreter)")
	profileOut := fs.String("profile", "", "profile SML execution; write <base>.json, <base>.folded, <base>.pb")
	profPeriod := fs.Uint64("profile-period", 0, "sampling period in interpreter steps (0 = default)")
	groupPath, rest := splitGroupArg(args)
	fs.Parse(rest)
	if groupPath == "" && fs.NArg() == 1 {
		groupPath = fs.Arg(0)
	}
	if groupPath == "" {
		usage()
	}
	if *report != "text" && *report != "json" {
		usage()
	}
	if *policy != "cutoff" && *policy != "timestamp" {
		usage()
	}
	engine, err := interp.ParseEngine(*execFlag)
	if err != nil {
		fatal(err)
	}

	// Daemon dispatch: when a live daemon serves this store, hand it
	// the build and render its streamed frames — same output, summary,
	// and exit status as an in-process build. The local-only telemetry
	// surfaces (-trace, -jsonl, -serve) force the in-process path, and
	// any dial/probe failure falls back to it silently (unless
	// -daemon require). A daemon that answers but rejects with one of
	// PROTOCOL.md §9's backpressure codes (queue_full, draining) also
	// falls back in-process — the daemon is temporarily unavailable,
	// not broken; only -daemon require turns that into an error.
	// -exec=tree is a debugging mode, not a protocol feature: it too
	// forces the in-process path, since the daemon always runs the
	// default compiled engine. So does -profile: the profile files
	// belong to this invocation's Manager, not the daemon's (profile a
	// daemon's builds with `irm daemon -profile` and the
	// /debug/sml/profile endpoint instead).
	if *daemonMode != "off" && *tracePath == "" && *jsonlPath == "" && *serveAddr == "" &&
		*profileOut == "" && engine == interp.EngineClosure {
		socketFlag := ""
		if *daemonMode != "auto" && *daemonMode != "require" {
			socketFlag = *daemonMode
		}
		if c := dialDaemon(socketFlag, *storeDir); c != nil {
			err := buildViaDaemon(c, groupPath, *policy, *jobs, *explain, *report)
			switch {
			case err == nil:
				return
			case *daemonMode != "require" && daemon.IsBackpressure(err):
				// Fall through to the in-process build below. Backpressure
				// rejections happen at admission, before the stream starts,
				// so nothing has been rendered yet.
			default:
				fatal(err)
			}
		} else if *daemonMode == "require" {
			fatal(fmt.Errorf("no live daemon for store %s (socket %s)",
				*storeDir, daemon.ResolveSocket(socketFlag, *storeDir)))
		}
	}

	group, err := core.LoadGroup(groupPath)
	if err != nil {
		fatal(err)
	}
	store, err := core.NewDirStore(*storeDir)
	if err != nil {
		fatal(err)
	}
	// One collector spans the manager, the store, and the lock path.
	col := obs.New()
	store.Obs = col
	m := &core.Manager{Store: store, Stdout: os.Stdout, Obs: col, Jobs: *jobs, Engine: engine}
	switch *policy {
	case "cutoff":
		m.Policy = core.PolicyCutoff
	case "timestamp":
		m.Policy = core.PolicyTimestamp
	default:
		usage()
	}
	if *verbose {
		m.Log = os.Stderr
	}
	if *profileOut != "" {
		m.ProfilePeriod = *profPeriod
		if m.ProfilePeriod == 0 {
			m.ProfilePeriod = interp.DefaultProfilePeriod
		}
	}
	ledger := openLedger(*historyFlag, *storeDir)
	var liveProf *prof.Live
	if *serveAddr != "" {
		// Bind before the build so a scraper or profiler can attach from
		// the first instant; the listener dies with the process.
		srv := obsserve.New(col, ledger)
		if *profileOut != "" {
			liveProf = &prof.Live{}
			srv.Prof = liveProf
		}
		if _, err := startServer(*serveAddr, srv); err != nil {
			fatal(err)
		}
	}
	start := time.Now()
	_, buildErr := m.Build(group.Files)
	recordBuild(ledger, m, group.Name, *jobs, time.Since(start), buildErr)
	// Telemetry is flushed before the build error is reported: a trace
	// of a failing build is the one you want most. Same for the
	// profile: a partial profile of a failing build still attributes
	// the steps that did run.
	flushTelemetry(col, *tracePath, *jsonlPath)
	if *profileOut != "" && m.Prof != nil {
		if liveProf != nil {
			liveProf.Set(group.Name, m.Prof)
		}
		if err := m.Prof.WriteFiles(*profileOut, group.Name); err != nil {
			fatal(err)
		}
	}
	if *explain {
		if err := obs.WriteExplainJSONL(os.Stderr, m.Explains); err != nil {
			fatal(err)
		}
	}
	if buildErr != nil {
		fatal(buildErr)
	}
	if *report == "json" {
		writeJSONLine(os.Stdout, m.Report(group.Name))
		return
	}
	st := m.Stats
	fmt.Printf("%s: %d units — parsed %d, compiled %d, loaded %d, cutoffs %d, corrupt %d, recovered %d\n",
		group.Name, st.Units, st.Parsed, st.Compiled, st.Loaded, st.Cutoffs, st.Corrupt, st.Recovered)
	fmt.Printf("  compile %v, hash %v, pickle %v, load %v, exec %v\n",
		st.CompileTime, st.HashTime, st.PickleTime, st.LoadTime, st.ExecTime)
}

// flushTelemetry writes the collector's trace and JSONL files, if
// requested.
func flushTelemetry(col *obs.Collector, tracePath, jsonlPath string) {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		if err := col.WriteTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			fatal(err)
		}
		if err := col.WriteJSONL(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func cmdDeps(args []string) {
	fs := flag.NewFlagSet("deps", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	group, err := core.LoadGroup(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	var infos []*depend.Info
	for _, f := range group.Files {
		info, err := depend.Analyze(f.Name, f.Source)
		if err != nil {
			fatal(err)
		}
		infos = append(infos, info)
	}
	deps := depend.Graph(infos)
	order, err := depend.TopoSort(infos)
	if err != nil {
		fatal(err)
	}
	for _, info := range order {
		fmt.Printf("%s:", info.Name)
		for _, d := range deps[info.Name] {
			fmt.Printf(" %s", d)
		}
		fmt.Println()
	}
}

// cmdCollision prints the paper's §5 collision analysis: with n pids
// in a system there are n(n-1)/2 pairs; each pair of 128-bit hashes
// collides with probability 2^-128.
func cmdCollision(args []string) {
	fs := flag.NewFlagSet("collision", flag.ExitOnError)
	pids := fs.Int("pids", 1<<13, "number of pids in the system")
	fs.Parse(args)

	n := float64(*pids)
	pairs := n * (n - 1) / 2
	log2Pairs := math.Log2(pairs)
	log2P := log2Pairs - 128
	fmt.Printf("pids:               %d (2^%.1f)\n", *pids, math.Log2(n))
	fmt.Printf("pairs:              %.0f (2^%.1f)\n", pairs, log2Pairs)
	fmt.Printf("P(any collision) <= 2^%.1f\n", log2P)
	fmt.Printf("paper (§5): 2^13 pids -> ~2^25 pairs -> P ~ 2^-103\n")
}

// writeJSONLine marshals v onto a single line of w — keeping the
// machine-readable report greppable as "the last line of stdout" even
// when program output precedes it.
func writeJSONLine(w io.Writer, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "irm:", err)
	os.Exit(1)
}
