// Command irm is the Incremental Recompilation Manager CLI (§6, §9 of
// the paper): it builds library groups described by ".cm"-style files,
// reusing cached bin files whenever the cutoff rule allows, and can
// display dependency graphs and the §5 hash-collision analysis.
//
//	irm build group.cm [-store dir] [-policy cutoff|timestamp] [-v]
//	irm deps  group.cm
//	irm collision [-pids n]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/depend"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		cmdBuild(os.Args[2:])
	case "deps":
		cmdDeps(os.Args[2:])
	case "show":
		cmdShow(os.Args[2:])
	case "collision":
		cmdCollision(os.Args[2:])
	default:
		usage()
	}
}

// cmdShow compiles the named source files in order and prints each
// unit's interface — the per-unit "interface" view of §6.
func cmdShow(args []string) {
	if len(args) == 0 {
		usage()
	}
	session, err := compiler.NewSession(os.Stdout)
	if err != nil {
		fatal(err)
	}
	for _, path := range args {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		u, err := session.Run(path, string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Print(compiler.Describe(u))
		fmt.Println()
	}
}

// splitGroupArg accepts the group file either before or after the
// flags (Go's flag package stops at the first positional argument).
func splitGroupArg(args []string) (group string, rest []string) {
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		return args[0], args[1:]
	}
	return "", args
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  irm build group.cm [-store dir] [-policy cutoff|timestamp] [-v]
  irm deps  group.cm
  irm show  file.sml ...
  irm collision [-pids n]`)
	os.Exit(2)
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	storeDir := fs.String("store", ".irm-store", "bin cache directory")
	policy := fs.String("policy", "cutoff", "recompilation policy: cutoff or timestamp")
	verbose := fs.Bool("v", false, "log per-unit actions")
	groupPath, rest := splitGroupArg(args)
	fs.Parse(rest)
	if groupPath == "" && fs.NArg() == 1 {
		groupPath = fs.Arg(0)
	}
	if groupPath == "" {
		usage()
	}

	group, err := core.LoadGroup(groupPath)
	if err != nil {
		fatal(err)
	}
	store, err := core.NewDirStore(*storeDir)
	if err != nil {
		fatal(err)
	}
	m := &core.Manager{Store: store, Stdout: os.Stdout}
	switch *policy {
	case "cutoff":
		m.Policy = core.PolicyCutoff
	case "timestamp":
		m.Policy = core.PolicyTimestamp
	default:
		usage()
	}
	if *verbose {
		m.Log = os.Stderr
	}
	if _, err := m.Build(group.Files); err != nil {
		fatal(err)
	}
	st := m.Stats
	fmt.Printf("%s: %d units — parsed %d, compiled %d, loaded %d, cutoffs %d, corrupt %d, recovered %d\n",
		group.Name, st.Units, st.Parsed, st.Compiled, st.Loaded, st.Cutoffs, st.Corrupt, st.Recovered)
	fmt.Printf("  compile %v, hash %v, pickle %v, load %v, exec %v\n",
		st.CompileTime, st.HashTime, st.PickleTime, st.LoadTime, st.ExecTime)
}

func cmdDeps(args []string) {
	fs := flag.NewFlagSet("deps", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	group, err := core.LoadGroup(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	var infos []*depend.Info
	for _, f := range group.Files {
		info, err := depend.Analyze(f.Name, f.Source)
		if err != nil {
			fatal(err)
		}
		infos = append(infos, info)
	}
	deps := depend.Graph(infos)
	order, err := depend.TopoSort(infos)
	if err != nil {
		fatal(err)
	}
	for _, info := range order {
		fmt.Printf("%s:", info.Name)
		for _, d := range deps[info.Name] {
			fmt.Printf(" %s", d)
		}
		fmt.Println()
	}
}

// cmdCollision prints the paper's §5 collision analysis: with n pids
// in a system there are n(n-1)/2 pairs; each pair of 128-bit hashes
// collides with probability 2^-128.
func cmdCollision(args []string) {
	fs := flag.NewFlagSet("collision", flag.ExitOnError)
	pids := fs.Int("pids", 1<<13, "number of pids in the system")
	fs.Parse(args)

	n := float64(*pids)
	pairs := n * (n - 1) / 2
	log2Pairs := math.Log2(pairs)
	log2P := log2Pairs - 128
	fmt.Printf("pids:               %d (2^%.1f)\n", *pids, math.Log2(n))
	fmt.Printf("pairs:              %.0f (2^%.1f)\n", pairs, log2Pairs)
	fmt.Printf("P(any collision) <= 2^%.1f\n", log2P)
	fmt.Printf("paper (§5): 2^13 pids -> ~2^25 pairs -> P ~ 2^-103\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "irm:", err)
	os.Exit(1)
}
