package main

// The continuous-observability subcommands: `irm serve` (live
// /metrics, /debug/pprof, /healthz, /builds over a build), `irm
// history` (the build ledger as a trend table with regression
// flagging), `irm top` (per-unit cost aggregated across the ledger),
// and `irm gen` (materialize a synthetic workload for CI and
// profiling runs).

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/obsserve"
	"repro/internal/workload"
)

// defaultHistoryDir derives the ledger location from the store
// location: a sibling `.irm/history` directory, so every store a CLI
// test creates in a temp dir gets its own ledger beside it instead of
// polluting the working directory.
func defaultHistoryDir(storeDir string) string {
	return filepath.Join(filepath.Dir(storeDir), ".irm", "history")
}

// openLedger resolves the -history flag: "" derives from the store,
// "off" disables, anything else is the ledger directory itself.
func openLedger(historyFlag, storeDir string) *history.Ledger {
	if historyFlag == "off" {
		return nil
	}
	dir := historyFlag
	if dir == "" {
		dir = defaultHistoryDir(storeDir)
	}
	l, err := history.Open(dir, nil)
	if err != nil {
		// The ledger is telemetry: a build must not fail because its
		// history cannot be written.
		fmt.Fprintln(os.Stderr, "irm:", err)
		return nil
	}
	return l
}

// recordBuild appends one build's summary to the ledger, if open.
// A profiled build's record also carries its hot-function table, so
// `irm top -by fn` can rank functions across builds.
func recordBuild(l *history.Ledger, m *core.Manager, name string,
	jobs int, wall time.Duration, buildErr error) {
	if l == nil {
		return
	}
	rec := history.FromReport(m.Report(name), m.UnitTimings, jobs,
		wall, time.Now(), buildErr)
	if m.Prof != nil {
		rec.HotFunctions = m.Prof.Top(20)
	}
	if err := l.Append(rec); err != nil {
		fmt.Fprintln(os.Stderr, "irm:", err)
	}
}

// startServer binds addr, announces the resolved address on stderr
// (machine-parseable: "irm: listening on HOST:PORT"), and serves the
// telemetry mux in the background. It returns the listener so callers
// can report or close it.
func startServer(addr string, srv *obsserve.Server) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "irm: listening on %s\n", ln.Addr())
	go http.Serve(ln, srv.Handler())
	return ln, nil
}

// cmdServe builds the group (if given) with full telemetry attached
// and then blocks, serving /metrics, /healthz, /builds, and
// /debug/pprof until killed. The listener binds before the build so a
// scrape or profile can attach from the first instant.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:0", "telemetry listen address")
	storeDir := fs.String("store", ".irm-store", "bin cache directory")
	policy := fs.String("policy", "cutoff", "recompilation policy: cutoff or timestamp")
	jobs := fs.Int("j", 0, "parallel build workers (0 = one per core)")
	historyFlag := fs.String("history", "", "ledger directory ('' = beside the store, 'off' = disabled)")
	groupPath, rest := splitGroupArg(args)
	fs.Parse(rest)
	if groupPath == "" && fs.NArg() == 1 {
		groupPath = fs.Arg(0)
	}

	col := obs.New()
	ledger := openLedger(*historyFlag, *storeDir)
	srv := obsserve.New(col, ledger)
	if _, err := startServer(*addr, srv); err != nil {
		fatal(err)
	}

	if groupPath != "" {
		group, err := core.LoadGroup(groupPath)
		if err != nil {
			fatal(err)
		}
		store, err := core.NewDirStore(*storeDir)
		if err != nil {
			fatal(err)
		}
		store.Obs = col
		m := &core.Manager{Store: store, Stdout: os.Stdout, Obs: col, Jobs: *jobs}
		switch *policy {
		case "cutoff":
			m.Policy = core.PolicyCutoff
		case "timestamp":
			m.Policy = core.PolicyTimestamp
		default:
			usage()
		}
		start := time.Now()
		_, buildErr := m.Build(group.Files)
		recordBuild(ledger, m, group.Name, *jobs, time.Since(start), buildErr)
		if buildErr != nil {
			// Keep serving: the metrics of a failed build are the ones
			// worth scraping. The exit status is lost anyway (we block).
			fmt.Fprintln(os.Stderr, "irm:", buildErr)
		} else {
			st := m.Stats
			fmt.Printf("%s: %d units — parsed %d, compiled %d, loaded %d, cutoffs %d\n",
				group.Name, st.Units, st.Parsed, st.Compiled, st.Loaded, st.Cutoffs)
		}
	}
	select {} // serve until killed
}

// cmdHistory renders the ledger as a trend table, newest last, and
// flags wall-time regressions against the trailing median.
func cmdHistory(args []string) {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	storeDir := fs.String("store", ".irm-store", "bin cache directory the ledger sits beside")
	dir := fs.String("dir", "", "ledger directory (overrides -store derivation)")
	limit := fs.Int("n", 20, "show at most n newest records")
	window := fs.Int("window", 10, "trailing builds forming the regression baseline")
	threshold := fs.Float64("threshold", 0.25, "regression threshold (0.25 = 25% over median)")
	since := fs.Duration("since", 0, "only records newer than this age (e.g. 30m, 2h; 0 = all)")
	fs.Parse(args)

	ledgerDir := *dir
	if ledgerDir == "" {
		ledgerDir = defaultHistoryDir(*storeDir)
	}
	l, err := history.Open(ledgerDir, nil)
	if err != nil {
		fatal(err)
	}
	recs, skipped, err := l.ReadAll()
	if err != nil {
		fatal(err)
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "irm: skipped %d corrupt ledger lines\n", skipped)
	}
	if *since > 0 {
		recs = history.FilterSince(recs, time.Now().Add(-*since))
	}
	if len(recs) == 0 {
		fmt.Println("no builds recorded")
		return
	}

	regs := history.Regressions(recs, *window, *threshold)
	flagged := map[int]history.Regression{}
	for _, r := range regs {
		flagged[r.Index] = r
	}

	from := 0
	if len(recs) > *limit {
		from = len(recs) - *limit
	}
	fmt.Printf("%-20s %-24s %-9s %10s %6s %6s %6s %7s\n",
		"WHEN", "NAME", "OUTCOME", "WALL", "UNITS", "COMP", "LOAD", "HIT%")
	for i := from; i < len(recs); i++ {
		r := recs[i]
		line := fmt.Sprintf("%-20s %-24s %-9s %10s %6d %6d %6d %6.1f%%",
			time.Unix(0, r.TimeUnixNs).Format("2006-01-02 15:04:05"),
			trunc(r.Name, 24), r.Outcome,
			time.Duration(r.WallNs).Round(time.Microsecond),
			r.Units, r.Compiled, r.Loaded, r.HitRate*100)
		if reg, ok := flagged[i]; ok {
			line += fmt.Sprintf("  REGRESSION +%.0f%% vs median %s",
				(reg.Ratio-1)*100, time.Duration(reg.BaselineNs).Round(time.Microsecond))
		}
		fmt.Println(line)
	}
	if len(regs) > 0 {
		fmt.Printf("%d regression(s) flagged (threshold %.0f%%, window %d)\n",
			len(regs), *threshold*100, *window)
	}
}

// cmdTop aggregates per-unit (or, with -by fn, per-function) cost
// across the ledger and prints the most expensive entries. -by cost
// ranks units by committed wall time, -by exec by execute-phase time
// alone, and -by fn by profiled self-steps (needs records written by
// profiled builds: `irm build -profile`, `irm profile`, or a daemon
// running with -profile).
func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	storeDir := fs.String("store", ".irm-store", "bin cache directory the ledger sits beside")
	dir := fs.String("dir", "", "ledger directory (overrides -store derivation)")
	by := fs.String("by", "cost", "ranking: cost (unit wall time), exec (execute phase), or fn (profiled functions)")
	limit := fs.Int("n", 10, "show at most n rows")
	since := fs.Duration("since", 0, "only records newer than this age (e.g. 30m, 2h; 0 = all)")
	fs.Parse(args)

	ledgerDir := *dir
	if ledgerDir == "" {
		ledgerDir = defaultHistoryDir(*storeDir)
	}
	l, err := history.Open(ledgerDir, nil)
	if err != nil {
		fatal(err)
	}
	recs, _, err := l.ReadAll()
	if err != nil {
		fatal(err)
	}
	if *since > 0 {
		recs = history.FilterSince(recs, time.Now().Add(-*since))
	}
	switch *by {
	case "cost":
		top := history.Top(recs)
		if len(top) == 0 {
			fmt.Println("no unit timings recorded")
			return
		}
		if len(top) > *limit {
			top = top[:*limit]
		}
		fmt.Printf("%-24s %7s %7s %12s %12s %12s %6s\n",
			"UNIT", "BUILDS", "COMP", "TOTAL", "MEAN", "MAX", "SHARE")
		for _, u := range top {
			fmt.Printf("%-24s %7d %7d %12s %12s %12s %5.1f%%\n",
				trunc(u.Unit, 24), u.Builds, u.Compiled,
				time.Duration(u.TotalNs).Round(time.Microsecond),
				time.Duration(u.MeanNs).Round(time.Microsecond),
				time.Duration(u.MaxNs).Round(time.Microsecond),
				u.ShareOfAll*100)
		}
	case "exec":
		top := history.TopByExec(recs)
		if len(top) == 0 {
			fmt.Println("no execution timings recorded")
			return
		}
		if len(top) > *limit {
			top = top[:*limit]
		}
		fmt.Printf("%-24s %7s %12s %12s %12s %12s %6s\n",
			"UNIT", "BUILDS", "EXEC-TOTAL", "MEAN", "MAX", "STEPS", "SHARE")
		for _, u := range top {
			fmt.Printf("%-24s %7d %12s %12s %12s %12d %5.1f%%\n",
				trunc(u.Unit, 24), u.Builds,
				time.Duration(u.TotalNs).Round(time.Microsecond),
				time.Duration(u.MeanNs).Round(time.Microsecond),
				time.Duration(u.MaxNs).Round(time.Microsecond),
				u.Steps, u.ShareOfAll*100)
		}
	case "fn":
		top := history.TopFuncs(recs)
		if len(top) == 0 {
			fmt.Println("no profiled builds recorded (run a build with -profile)")
			return
		}
		if len(top) > *limit {
			top = top[:*limit]
		}
		fmt.Printf("%-28s %-16s %7s %12s %10s %10s %6s\n",
			"FUNCTION", "UNIT", "BUILDS", "SELF-STEPS", "APPLIES", "ALLOCS", "SHARE")
		for _, f := range top {
			fmt.Printf("%-28s %-16s %7d %12d %10d %10d %5.1f%%\n",
				trunc(f.Name, 28), trunc(f.Unit, 16), f.Builds,
				f.SelfSteps, f.Applies, f.Allocs, f.ShareOfAll*100)
		}
	default:
		usage()
	}
}

// cmdGen materializes a synthetic workload project to disk and prints
// the group-file path — the input CI's serve smoke test builds.
func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dir := fs.String("dir", "irm-workload", "directory to write the project into")
	units := fs.Int("units", 12, "number of compilation units")
	lines := fs.Int("lines", 30, "approximate source lines per unit")
	seed := fs.Int64("seed", 7, "generator seed")
	shape := fs.String("shape", "layered", "dependency shape: chain, fan, diamond, or layered")
	fs.Parse(args)

	cfg := workload.Small()
	cfg.Units, cfg.LinesPerUnit, cfg.Seed = *units, *lines, *seed
	switch *shape {
	case "chain":
		cfg.Shape = workload.Chain
	case "fan":
		cfg.Shape = workload.Fan
	case "diamond":
		cfg.Shape = workload.Diamond
	case "layered":
		cfg.Shape = workload.Layered
	default:
		usage()
	}
	groupPath, err := workload.Generate(cfg).Materialize(*dir)
	if err != nil {
		fatal(err)
	}
	fmt.Println(groupPath)
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
