package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// BenchSchema identifies the BENCH_irm.json format.
const BenchSchema = "irm-bench/1"

// BenchFile is the machine-readable output of `irm bench`: the edit
// matrix of the paper's evaluation (cold / null / implementation edit
// / interface edit) run against one generated project, with wall
// time, Stats, phase timings, and raw counters per scenario — the
// repo's perf trajectory as data.
type BenchFile struct {
	Schema    string          `json:"schema"`
	Config    BenchConfig     `json:"config"`
	Scenarios []BenchScenario `json:"scenarios"`
}

// BenchConfig echoes the workload parameters the run used.
type BenchConfig struct {
	Units        int    `json:"units"`
	LinesPerUnit int    `json:"lines_per_unit"`
	Shape        string `json:"shape"`
	Seed         int64  `json:"seed"`
	Policy       string `json:"policy"`
}

// BenchScenario is one build of the edit matrix.
type BenchScenario struct {
	Name   string     `json:"name"`
	WallNs int64      `json:"wall_ns"`
	Report obs.Report `json:"report"`
}

// cmdBench runs the bench harness: generate a layered project, build
// it cold, null, after an implementation-only edit (cutoff), and
// after an interface edit (cascade), all against one on-disk store,
// and write the results as JSON.
func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_irm.json", "output file (- for stdout)")
	units := fs.Int("units", 60, "units in the generated project")
	lines := fs.Int("lines", 30, "approximate lines per unit")
	seed := fs.Int64("seed", 1994, "workload generator seed")
	policy := fs.String("policy", "cutoff", "recompilation policy: cutoff or timestamp")
	fs.Parse(args)

	cfg := workload.Config{
		Shape: workload.Layered, Units: *units, LinesPerUnit: *lines,
		FunsPerUnit: 4, FanIn: 3, LayerWidth: 6, Seed: *seed,
	}
	p := workload.Generate(cfg)

	pol := core.PolicyCutoff
	switch *policy {
	case "cutoff":
	case "timestamp":
		pol = core.PolicyTimestamp
	default:
		usage()
	}

	storeDir, err := os.MkdirTemp("", "irm-bench-store-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(storeDir)

	// The edited unit is the base of the DAG, so the interface edit
	// cascades through the widest possible cone.
	scenarios := []struct {
		name  string
		files []core.File
	}{
		{"cold", p.Files},
		{"null", p.Files},
		{"impl-edit", p.Edit(0, workload.ImplEdit, 1)},
		{"interface-edit", p.Edit(0, workload.InterfaceEdit, 2)},
	}

	bf := BenchFile{
		Schema: BenchSchema,
		Config: BenchConfig{
			Units: cfg.Units, LinesPerUnit: cfg.LinesPerUnit,
			Shape: cfg.Shape.String(), Seed: cfg.Seed, Policy: pol.String(),
		},
	}
	for _, sc := range scenarios {
		store, err := core.NewDirStore(storeDir)
		if err != nil {
			fatal(err)
		}
		col := obs.New()
		store.Obs = col
		m := &core.Manager{Policy: pol, Store: store, Stdout: io.Discard, Obs: col}
		t0 := time.Now()
		if _, err := m.Build(sc.files); err != nil {
			fatal(fmt.Errorf("bench scenario %s: %v", sc.name, err))
		}
		wall := time.Since(t0)
		bf.Scenarios = append(bf.Scenarios, BenchScenario{
			Name:   sc.name,
			WallNs: int64(wall),
			Report: m.Report(sc.name),
		})
		fmt.Fprintf(os.Stderr, "irm bench: %-14s %10v  compiled %3d, loaded %3d, cutoffs %3d\n",
			sc.name, wall.Round(time.Microsecond), m.Stats.Compiled, m.Stats.Loaded, m.Stats.Cutoffs)
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	writeJSONLine(w, bf)
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "irm bench: wrote %s\n", *out)
	}
}
