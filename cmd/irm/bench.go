package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/pickle"
	"repro/internal/workload"
)

// BenchSchema identifies the BENCH_irm.json format. Version 3 adds
// per-scenario heap-allocation deltas and the warm-env-cache record
// (rehydration speedup and hit rate of the pid-keyed EnvCache);
// version 4 adds the provenance record (git commit, dirty flag, Go
// version, GOMAXPROCS) so archived bench files say what produced them;
// version 5 records the exec engine in the config and per-scenario
// execution figures (exec wall time, peak exec parallelism) from the
// compiled-execution engine's counters.
const BenchSchema = "irm-bench/5"

// BenchFile is the machine-readable output of `irm bench`: the edit
// matrix of the paper's evaluation (cold / null / implementation edit
// / interface edit) run against one generated project at each worker
// count, with wall time, Stats, phase timings, and raw counters per
// scenario — the repo's perf trajectory as data.
type BenchFile struct {
	Schema     string          `json:"schema"`
	Provenance BenchProvenance `json:"provenance"`
	Config     BenchConfig     `json:"config"`
	Matrix     []BenchRun      `json:"matrix"`
	Speedup    BenchSpeedup    `json:"speedup"`
	WarmCache  BenchWarmCache  `json:"warm_cache"`
}

// BenchProvenance records what produced a bench file, so two archived
// runs are comparable (or provably not): the commit the tree was at,
// whether the tree was dirty, and the toolchain and parallelism the
// numbers were measured under.
type BenchProvenance struct {
	GitCommit  string `json:"git_commit,omitempty"` // empty outside a git checkout
	GitDirty   bool   `json:"git_dirty"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// collectProvenance gathers the provenance record. git failures are
// not errors — a bench run outside a checkout simply has no commit.
func collectProvenance() BenchProvenance {
	p := BenchProvenance{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		p.GitCommit = strings.TrimSpace(string(out))
	}
	if out, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
		p.GitDirty = len(strings.TrimSpace(string(out))) > 0
	}
	return p
}

// BenchConfig echoes the workload parameters the run used.
type BenchConfig struct {
	Units        int    `json:"units"`
	LinesPerUnit int    `json:"lines_per_unit"`
	Shape        string `json:"shape"`
	Seed         int64  `json:"seed"`
	Policy       string `json:"policy"`
	ExecEngine   string `json:"exec_engine"` // closure or tree (-exec)
}

// BenchRun is the edit matrix at one scheduler width.
type BenchRun struct {
	Jobs      int             `json:"jobs"`
	Scenarios []BenchScenario `json:"scenarios"`
}

// BenchScenario is one build of the edit matrix. Allocs and
// AllocBytes are heap-allocation deltas (runtime.MemStats Mallocs /
// TotalAlloc) across the build; AllocsPerUnit divides by the project
// size so widths and PRs compare on the same scale.
type BenchScenario struct {
	Name          string `json:"name"`
	WallNs        int64  `json:"wall_ns"`
	Allocs        uint64 `json:"allocs"`
	AllocBytes    uint64 `json:"alloc_bytes"`
	AllocsPerUnit uint64 `json:"allocs_per_unit"`
	// ExecNs is the summed unit-execution time (counter time.exec_ns)
	// and ExecParallelism the peak number of units executing at once
	// (counter exec.parallelism.max) — the schema-5 view of the
	// parallel exec stage.
	ExecNs          int64      `json:"exec_ns"`
	ExecParallelism int64      `json:"exec_parallelism"`
	Report          obs.Report `json:"report"`
}

// BenchSpeedup compares the cold build across scheduler widths — the
// headline number of the parallel scheduler.
type BenchSpeedup struct {
	Jobs         int     `json:"jobs"`            // the parallel width measured
	ColdWallNsJ1 int64   `json:"cold_wall_ns_j1"` // cold build, one worker
	ColdWallNsJN int64   `json:"cold_wall_ns_jn"` // cold build, Jobs workers
	ColdSpeedup  float64 `json:"cold_speedup"`    // j1 / jn wall-time ratio
}

// BenchWarmCache measures the pid-keyed rehydration cache
// (pickle.EnvCache): after a cold build, two null rebuilds run on
// fresh managers sharing one private cache. The first rebuild decodes
// every environment (all misses, populating the cache); the second
// serves every environment from the cache (all hits). Speedup is the
// first rebuild's wall time over the second's.
type BenchWarmCache struct {
	ColdWallNs  int64   `json:"cold_wall_ns"`
	Warm1WallNs int64   `json:"warm1_wall_ns"` // null rebuild, cold cache
	Warm2WallNs int64   `json:"warm2_wall_ns"` // null rebuild, warm cache
	Hits        int64   `json:"hits"`          // env-cache hits in rebuild 2
	Misses      int64   `json:"misses"`        // env-cache misses in rebuild 1
	HitRate     float64 `json:"hit_rate"`      // hits / loads in rebuild 2
	Speedup     float64 `json:"speedup"`       // warm1 / warm2 wall ratio
}

// memDelta runs f and returns the heap-allocation deltas across it.
func memDelta(f func()) (allocs, bytes uint64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// warmCacheRun measures BenchWarmCache on an in-memory store so the
// rebuild wall times isolate rehydration cost from disk I/O.
func warmCacheRun(files []core.File, pol core.Policy) (BenchWarmCache, error) {
	store := core.NewMemStore()
	cache := pickle.NewEnvCache(0)
	build := func() (*core.Manager, int64, error) {
		m := &core.Manager{Policy: pol, Store: store, Stdout: io.Discard, EnvCache: cache}
		t0 := time.Now()
		_, err := m.Build(files)
		return m, int64(time.Since(t0)), err
	}
	var wc BenchWarmCache
	_, cold, err := build()
	if err != nil {
		return wc, err
	}
	m1, warm1, err := build()
	if err != nil {
		return wc, err
	}
	m2, warm2, err := build()
	if err != nil {
		return wc, err
	}
	wc = BenchWarmCache{
		ColdWallNs: cold, Warm1WallNs: warm1, Warm2WallNs: warm2,
		Hits:   m2.Counters["cache.env_hits"],
		Misses: m1.Counters["cache.env_misses"],
	}
	if loads := m2.Counters["cache.env_hits"] + m2.Counters["cache.env_misses"]; loads > 0 {
		wc.HitRate = float64(wc.Hits) / float64(loads)
	}
	if warm2 > 0 {
		wc.Speedup = float64(warm1) / float64(warm2)
	}
	return wc, nil
}

// cmdBench runs the bench harness: generate a layered project, then
// for each scheduler width (-j1 and -jN) build it cold, null, after an
// implementation-only edit (cutoff), and after an interface edit
// (cascade), each width against its own fresh on-disk store, and write
// the results as JSON.
func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_irm.json", "output file (- for stdout)")
	units := fs.Int("units", 60, "units in the generated project")
	lines := fs.Int("lines", 30, "approximate lines per unit")
	seed := fs.Int64("seed", 1994, "workload generator seed")
	policy := fs.String("policy", "cutoff", "recompilation policy: cutoff or timestamp")
	jobs := fs.Int("j", 0, "parallel width to compare against -j1 (0 = one per core)")
	execFlag := fs.String("exec", "closure", "execution engine: closure (compiled) or tree (interpreter)")
	fs.Parse(args)
	engine, err := interp.ParseEngine(*execFlag)
	if err != nil {
		fatal(err)
	}

	cfg := workload.Config{
		Shape: workload.Layered, Units: *units, LinesPerUnit: *lines,
		FunsPerUnit: 4, FanIn: 3, LayerWidth: 6, Seed: *seed,
	}
	p := workload.Generate(cfg)

	pol := core.PolicyCutoff
	switch *policy {
	case "cutoff":
	case "timestamp":
		pol = core.PolicyTimestamp
	default:
		usage()
	}
	jn := *jobs
	if jn <= 0 {
		jn = runtime.GOMAXPROCS(0)
	}
	widths := []int{1}
	if jn != 1 {
		widths = append(widths, jn)
	}

	// The edited unit is the base of the DAG, so the interface edit
	// cascades through the widest possible cone.
	scenarios := []struct {
		name  string
		files []core.File
	}{
		{"cold", p.Files},
		{"null", p.Files},
		{"impl-edit", p.Edit(0, workload.ImplEdit, 1)},
		{"interface-edit", p.Edit(0, workload.InterfaceEdit, 2)},
	}

	bf := BenchFile{
		Schema:     BenchSchema,
		Provenance: collectProvenance(),
		Config: BenchConfig{
			Units: cfg.Units, LinesPerUnit: cfg.LinesPerUnit,
			Shape: cfg.Shape.String(), Seed: cfg.Seed, Policy: pol.String(),
			ExecEngine: engine.String(),
		},
	}
	coldWall := map[int]int64{}
	for _, w := range widths {
		storeDir, err := os.MkdirTemp("", "irm-bench-store-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(storeDir)
		run := BenchRun{Jobs: w}
		for _, sc := range scenarios {
			store, err := core.NewDirStore(storeDir)
			if err != nil {
				fatal(err)
			}
			col := obs.New()
			store.Obs = col
			m := &core.Manager{Policy: pol, Store: store, Stdout: io.Discard, Obs: col, Jobs: w, Engine: engine}
			var wall time.Duration
			var buildErr error
			allocs, allocBytes := memDelta(func() {
				t0 := time.Now()
				_, buildErr = m.Build(sc.files)
				wall = time.Since(t0)
			})
			if buildErr != nil {
				fatal(fmt.Errorf("bench scenario %s (-j%d): %v", sc.name, w, buildErr))
			}
			if sc.name == "cold" {
				coldWall[w] = int64(wall)
			}
			run.Scenarios = append(run.Scenarios, BenchScenario{
				Name:            sc.name,
				WallNs:          int64(wall),
				Allocs:          allocs,
				AllocBytes:      allocBytes,
				AllocsPerUnit:   allocs / uint64(len(p.Files)),
				ExecNs:          m.Counters["time.exec_ns"],
				ExecParallelism: m.Counters["exec.parallelism.max"],
				Report:          m.Report(sc.name),
			})
			fmt.Fprintf(os.Stderr, "irm bench: -j%-2d %-14s %10v  compiled %3d, loaded %3d, cutoffs %3d\n",
				w, sc.name, wall.Round(time.Microsecond), m.Stats.Compiled, m.Stats.Loaded, m.Stats.Cutoffs)
		}
		bf.Matrix = append(bf.Matrix, run)
	}
	bf.Speedup = BenchSpeedup{Jobs: jn, ColdWallNsJ1: coldWall[1], ColdWallNsJN: coldWall[jn]}
	if coldWall[jn] > 0 {
		bf.Speedup.ColdSpeedup = float64(coldWall[1]) / float64(coldWall[jn])
	}
	fmt.Fprintf(os.Stderr, "irm bench: cold speedup -j%d vs -j1: %.2fx\n",
		jn, bf.Speedup.ColdSpeedup)

	wc, err := warmCacheRun(p.Files, pol)
	if err != nil {
		fatal(fmt.Errorf("bench warm-cache run: %v", err))
	}
	bf.WarmCache = wc
	fmt.Fprintf(os.Stderr, "irm bench: warm env-cache rebuild: %.2fx (hit rate %.0f%%, %d hits)\n",
		wc.Speedup, wc.HitRate*100, wc.Hits)

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	writeJSONLine(w, bf)
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "irm bench: wrote %s\n", *out)
	}
}
