package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// BenchSchema identifies the BENCH_irm.json format. Version 2 nests
// the edit matrix under per-job-count runs and records the parallel
// cold-build speedup.
const BenchSchema = "irm-bench/2"

// BenchFile is the machine-readable output of `irm bench`: the edit
// matrix of the paper's evaluation (cold / null / implementation edit
// / interface edit) run against one generated project at each worker
// count, with wall time, Stats, phase timings, and raw counters per
// scenario — the repo's perf trajectory as data.
type BenchFile struct {
	Schema  string       `json:"schema"`
	Config  BenchConfig  `json:"config"`
	Matrix  []BenchRun   `json:"matrix"`
	Speedup BenchSpeedup `json:"speedup"`
}

// BenchConfig echoes the workload parameters the run used.
type BenchConfig struct {
	Units        int    `json:"units"`
	LinesPerUnit int    `json:"lines_per_unit"`
	Shape        string `json:"shape"`
	Seed         int64  `json:"seed"`
	Policy       string `json:"policy"`
}

// BenchRun is the edit matrix at one scheduler width.
type BenchRun struct {
	Jobs      int             `json:"jobs"`
	Scenarios []BenchScenario `json:"scenarios"`
}

// BenchScenario is one build of the edit matrix.
type BenchScenario struct {
	Name   string     `json:"name"`
	WallNs int64      `json:"wall_ns"`
	Report obs.Report `json:"report"`
}

// BenchSpeedup compares the cold build across scheduler widths — the
// headline number of the parallel scheduler.
type BenchSpeedup struct {
	Jobs         int     `json:"jobs"`            // the parallel width measured
	ColdWallNsJ1 int64   `json:"cold_wall_ns_j1"` // cold build, one worker
	ColdWallNsJN int64   `json:"cold_wall_ns_jn"` // cold build, Jobs workers
	ColdSpeedup  float64 `json:"cold_speedup"`    // j1 / jn wall-time ratio
}

// cmdBench runs the bench harness: generate a layered project, then
// for each scheduler width (-j1 and -jN) build it cold, null, after an
// implementation-only edit (cutoff), and after an interface edit
// (cascade), each width against its own fresh on-disk store, and write
// the results as JSON.
func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_irm.json", "output file (- for stdout)")
	units := fs.Int("units", 60, "units in the generated project")
	lines := fs.Int("lines", 30, "approximate lines per unit")
	seed := fs.Int64("seed", 1994, "workload generator seed")
	policy := fs.String("policy", "cutoff", "recompilation policy: cutoff or timestamp")
	jobs := fs.Int("j", 0, "parallel width to compare against -j1 (0 = one per core)")
	fs.Parse(args)

	cfg := workload.Config{
		Shape: workload.Layered, Units: *units, LinesPerUnit: *lines,
		FunsPerUnit: 4, FanIn: 3, LayerWidth: 6, Seed: *seed,
	}
	p := workload.Generate(cfg)

	pol := core.PolicyCutoff
	switch *policy {
	case "cutoff":
	case "timestamp":
		pol = core.PolicyTimestamp
	default:
		usage()
	}
	jn := *jobs
	if jn <= 0 {
		jn = runtime.GOMAXPROCS(0)
	}
	widths := []int{1}
	if jn != 1 {
		widths = append(widths, jn)
	}

	// The edited unit is the base of the DAG, so the interface edit
	// cascades through the widest possible cone.
	scenarios := []struct {
		name  string
		files []core.File
	}{
		{"cold", p.Files},
		{"null", p.Files},
		{"impl-edit", p.Edit(0, workload.ImplEdit, 1)},
		{"interface-edit", p.Edit(0, workload.InterfaceEdit, 2)},
	}

	bf := BenchFile{
		Schema: BenchSchema,
		Config: BenchConfig{
			Units: cfg.Units, LinesPerUnit: cfg.LinesPerUnit,
			Shape: cfg.Shape.String(), Seed: cfg.Seed, Policy: pol.String(),
		},
	}
	coldWall := map[int]int64{}
	for _, w := range widths {
		storeDir, err := os.MkdirTemp("", "irm-bench-store-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(storeDir)
		run := BenchRun{Jobs: w}
		for _, sc := range scenarios {
			store, err := core.NewDirStore(storeDir)
			if err != nil {
				fatal(err)
			}
			col := obs.New()
			store.Obs = col
			m := &core.Manager{Policy: pol, Store: store, Stdout: io.Discard, Obs: col, Jobs: w}
			t0 := time.Now()
			if _, err := m.Build(sc.files); err != nil {
				fatal(fmt.Errorf("bench scenario %s (-j%d): %v", sc.name, w, err))
			}
			wall := time.Since(t0)
			if sc.name == "cold" {
				coldWall[w] = int64(wall)
			}
			run.Scenarios = append(run.Scenarios, BenchScenario{
				Name:   sc.name,
				WallNs: int64(wall),
				Report: m.Report(sc.name),
			})
			fmt.Fprintf(os.Stderr, "irm bench: -j%-2d %-14s %10v  compiled %3d, loaded %3d, cutoffs %3d\n",
				w, sc.name, wall.Round(time.Microsecond), m.Stats.Compiled, m.Stats.Loaded, m.Stats.Cutoffs)
		}
		bf.Matrix = append(bf.Matrix, run)
	}
	bf.Speedup = BenchSpeedup{Jobs: jn, ColdWallNsJ1: coldWall[1], ColdWallNsJN: coldWall[jn]}
	if coldWall[jn] > 0 {
		bf.Speedup.ColdSpeedup = float64(coldWall[1]) / float64(coldWall[jn])
	}
	fmt.Fprintf(os.Stderr, "irm bench: cold speedup -j%d vs -j1: %.2fx\n",
		jn, bf.Speedup.ColdSpeedup)

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	writeJSONLine(w, bf)
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "irm bench: wrote %s\n", *out)
	}
}
