package main

// `irm profile`: the one-shot profiling run. It builds the group
// in-process with the SML-level execution profiler on (DESIGN.md
// §4k), prints the hot-function table, and — with -o — writes the
// same three artifacts `irm build -profile` does: the irm-profile/1
// JSON report, the folded-stack text, and the pprof profile.proto.
// Sampling is step-based, so the table is identical at any -j and
// under either -exec engine.

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/obs"
)

func cmdProfile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	storeDir := fs.String("store", ".irm-store", "bin cache directory")
	policy := fs.String("policy", "cutoff", "recompilation policy: cutoff or timestamp")
	jobs := fs.Int("j", 0, "parallel build workers (0 = one per core)")
	execFlag := fs.String("exec", "closure", "execution engine: closure (compiled) or tree (interpreter)")
	topN := fs.Int("n", 15, "rows in the hot-function table")
	period := fs.Uint64("period", 0, "sampling period in interpreter steps (0 = default)")
	out := fs.String("o", "", "also write <base>.json, <base>.folded, and <base>.pb")
	historyFlag := fs.String("history", "", "ledger directory ('' = beside the store, 'off' = disabled)")
	groupPath, rest := splitGroupArg(args)
	fs.Parse(rest)
	if groupPath == "" && fs.NArg() == 1 {
		groupPath = fs.Arg(0)
	}
	if groupPath == "" {
		usage()
	}
	engine, err := interp.ParseEngine(*execFlag)
	if err != nil {
		fatal(err)
	}

	group, err := core.LoadGroup(groupPath)
	if err != nil {
		fatal(err)
	}
	store, err := core.NewDirStore(*storeDir)
	if err != nil {
		fatal(err)
	}
	col := obs.New()
	store.Obs = col
	m := &core.Manager{Store: store, Stdout: os.Stdout, Obs: col, Jobs: *jobs, Engine: engine}
	switch *policy {
	case "cutoff":
		m.Policy = core.PolicyCutoff
	case "timestamp":
		m.Policy = core.PolicyTimestamp
	default:
		usage()
	}
	m.ProfilePeriod = *period
	if m.ProfilePeriod == 0 {
		m.ProfilePeriod = interp.DefaultProfilePeriod
	}

	ledger := openLedger(*historyFlag, *storeDir)
	start := time.Now()
	_, buildErr := m.Build(group.Files)
	recordBuild(ledger, m, group.Name, *jobs, time.Since(start), buildErr)
	// A failing build still yields a partial profile — print it before
	// reporting the error, like -trace does for traces.
	if m.Prof != nil {
		fmt.Println()
		m.Prof.WriteTable(os.Stdout, *topN)
		if *out != "" {
			if err := m.Prof.WriteFiles(*out, group.Name); err != nil {
				fatal(err)
			}
		}
	}
	if buildErr != nil {
		fatal(buildErr)
	}
}
