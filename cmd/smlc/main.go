// Command smlc is the batch compiler: it compiles SML source files,
// discovering their dependency order automatically (§6), and writes one
// bin file per unit (§3, §6 of the paper). It prints each unit's
// intrinsic static pid and import pids — the identities type-safe
// linkage is built on.
//
// Compilation runs on the parallel DAG scheduler shared with irm and
// smlrun: -j sets the worker count (0 = one per core), and the bin
// files written are identical whatever -j (DESIGN.md §4e).
//
// When an irm daemon is reachable — $IRM_DAEMON_SOCKET is set, or
// -daemon names a socket — smlc dispatches the sources inline over
// POST /v1/compile (PROTOCOL.md) and writes the returned bin files,
// which are byte-identical to an in-process run; otherwise it compiles
// in-process as before. -daemon off disables dispatch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/interp"
	"repro/internal/obs"
)

// binDirStore adapts the compile-only use case to the manager's Store:
// every Save becomes a bin file in the output directory. Load always
// misses, so each smlc run compiles everything fresh. The manager
// treats save errors as non-fatal (the build continues uncached), but
// an smlc run whose whole point is the bin files must not: the first
// error is kept and reported after the build.
type binDirStore struct {
	dir   string
	paths map[string]string // unit name -> written bin path
	err   error             // first failed write
}

func (s *binDirStore) Load(name string) (*core.Entry, error) { return nil, nil }

func (s *binDirStore) Save(name string, e *core.Entry) error {
	path := filepath.Join(s.dir, strings.TrimSuffix(name, ".sml")+".bin")
	if err := os.WriteFile(path, e.Bin, 0o644); err != nil {
		if s.err == nil {
			s.err = err
		}
		return err
	}
	s.paths[name] = path
	return nil
}

func main() {
	outDir := flag.String("d", ".", "directory for bin files")
	jobs := flag.Int("j", 0, "parallel build workers (0 = one per core)")
	verbose := flag.Bool("v", false, "print interfaces and imports")
	tracePath := flag.String("trace", "", "write Chrome trace_event JSON to this file")
	report := flag.String("report", "", "with 'json', write a machine-readable summary line to stderr")
	daemonMode := flag.String("daemon", "auto", "daemon dispatch: auto ($IRM_DAEMON_SOCKET), off, or a socket path")
	execFlag := flag.String("exec", "closure", "execution engine: closure (compiled) or tree (interpreter)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: smlc [-d dir] [-j n] [-v] [-trace out.json] [-report json] [-daemon auto|off|socket] [-exec closure|tree] file.sml ...")
		os.Exit(2)
	}
	if *report != "" && *report != "json" {
		fatal(fmt.Errorf("unknown -report format %q (want json)", *report))
	}
	engine, err := interp.ParseEngine(*execFlag)
	if err != nil {
		fatal(err)
	}

	var files []core.File
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		files = append(files, core.File{Name: filepath.Base(path), Source: string(src)})
	}

	// Daemon dispatch: with a reachable daemon socket — named by
	// -daemon or $IRM_DAEMON_SOCKET — compile the sources inline over
	// /v1/compile. smlc has no store to derive a socket from, so
	// "auto" means the environment variable only. The local-only
	// telemetry surfaces (-trace, -report) force the in-process path,
	// as does -exec=tree (the daemon always runs the compiled engine);
	// any probe failure falls back to it silently.
	if *daemonMode != "off" && *tracePath == "" && *report == "" &&
		engine == interp.EngineClosure {
		socket := *daemonMode
		if socket == "auto" {
			socket = os.Getenv(daemon.SocketEnv)
		}
		if socket != "" && compileViaDaemon(socket, files, *outDir, *jobs, *verbose) {
			return
		}
	}

	col := obs.New()
	store := &binDirStore{dir: *outDir, paths: map[string]string{}}
	m := &core.Manager{Policy: core.PolicyCutoff, Store: store,
		Stdout: os.Stdout, Obs: col, Jobs: *jobs, Engine: engine}
	session, err := m.Build(files)
	if err != nil {
		fatal(err)
	}
	if store.err != nil {
		fatal(store.err)
	}

	// Report units in the order given on the command line, whatever
	// order the scheduler compiled them in.
	byName := map[string]int{}
	for i, u := range session.Units {
		byName[u.Name] = i
	}
	for _, f := range files {
		i, ok := byName[f.Name]
		if !ok {
			continue
		}
		u := session.Units[i]
		fmt.Printf("%s: interface %s -> %s\n", u.Name, u.StatPid.Short(), store.paths[u.Name])
		if *verbose {
			for k, im := range u.Imports {
				fmt.Printf("  import[%d] %s\n", k, im)
			}
			for _, w := range u.Warnings {
				fmt.Printf("  warning: %s\n", w)
			}
		}
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := col.WriteTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *report == "json" {
		summary := struct {
			Schema   string           `json:"schema"`
			Tool     string           `json:"tool"`
			Units    int              `json:"units"`
			Counters map[string]int64 `json:"counters"`
		}{"smlc-report/1", "smlc", flag.NArg(), col.Counters()}
		data, err := json.Marshal(summary)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, string(data))
	}
}

// compileViaDaemon sends the sources to the daemon's /v1/compile and
// writes the returned bin files, printing the same per-unit lines as
// the in-process path. Returns false (caller compiles in-process) when
// no live daemon answers or the daemon rejects with a backpressure
// code (queue_full, draining — PROTOCOL.md §9); daemon-side compile
// failures are fatal, like their local equivalents.
func compileViaDaemon(socket string, files []core.File, outDir string, jobs int, verbose bool) bool {
	client := daemon.NewClient(socket)
	if _, err := client.Probe(); err != nil {
		return false
	}
	req := daemon.CompileRequest{Jobs: jobs, Client: fmt.Sprintf("smlc/%d", os.Getpid())}
	for _, f := range files {
		req.Units = append(req.Units, daemon.SourceUnit{Name: f.Name, Source: f.Source})
	}
	resp, err := client.Compile(req)
	if daemon.IsBackpressure(err) {
		return false
	}
	if err != nil {
		fatal(err)
	}
	for _, u := range resp.Units {
		path := filepath.Join(outDir, strings.TrimSuffix(u.Name, ".sml")+".bin")
		if err := os.WriteFile(path, u.Bin, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: interface %s -> %s\n", u.Name, u.PidShort, path)
		if verbose {
			for k, im := range u.Imports {
				fmt.Printf("  import[%d] %s\n", k, im)
			}
			for _, w := range u.Warnings {
				fmt.Printf("  warning: %s\n", w)
			}
		}
	}
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smlc:", err)
	os.Exit(1)
}
