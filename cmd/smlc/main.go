// Command smlc is the batch compiler: it compiles SML source files, in
// the order given, each against the environment exported by its
// predecessors, and writes one bin file per unit (§3, §6 of the
// paper). It prints each unit's intrinsic static pid and import pids —
// the identities type-safe linkage is built on.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/binfile"
	"repro/internal/compiler"
)

func main() {
	outDir := flag.String("d", ".", "directory for bin files")
	verbose := flag.Bool("v", false, "print interfaces and imports")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: smlc [-d dir] [-v] file.sml ...")
		os.Exit(2)
	}

	session, err := compiler.NewSession(os.Stdout)
	if err != nil {
		fatal(err)
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		name := filepath.Base(path)
		u, err := session.Run(name, string(src))
		if err != nil {
			fatal(err)
		}
		binPath := filepath.Join(*outDir, strings.TrimSuffix(name, ".sml")+".bin")
		f, err := os.Create(binPath)
		if err != nil {
			fatal(err)
		}
		if err := binfile.Write(f, u); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: interface %s -> %s\n", name, u.StatPid.Short(), binPath)
		if *verbose {
			for i, im := range u.Imports {
				fmt.Printf("  import[%d] %s\n", i, im)
			}
			for _, w := range u.Warnings {
				fmt.Printf("  warning: %s\n", w)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smlc:", err)
	os.Exit(1)
}
