// Command smlc is the batch compiler: it compiles SML source files, in
// the order given, each against the environment exported by its
// predecessors, and writes one bin file per unit (§3, §6 of the
// paper). It prints each unit's intrinsic static pid and import pids —
// the identities type-safe linkage is built on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/binfile"
	"repro/internal/compiler"
	"repro/internal/obs"
)

func main() {
	outDir := flag.String("d", ".", "directory for bin files")
	verbose := flag.Bool("v", false, "print interfaces and imports")
	tracePath := flag.String("trace", "", "write Chrome trace_event JSON to this file")
	report := flag.String("report", "", "with 'json', write a machine-readable summary line to stderr")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: smlc [-d dir] [-v] [-trace out.json] [-report json] file.sml ...")
		os.Exit(2)
	}
	if *report != "" && *report != "json" {
		fatal(fmt.Errorf("unknown -report format %q (want json)", *report))
	}

	col := obs.New()
	root := col.StartSpan(obs.CatBuild, "smlc").Arg("units", flag.NArg())
	sspan := root.Child(obs.CatPhase, "session")
	session, err := compiler.NewSession(os.Stdout)
	sspan.End()
	if err != nil {
		fatal(err)
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		name := filepath.Base(path)
		uspan := root.Child(obs.CatUnit, name)
		cspan := uspan.Child(obs.CatPhase, "compile")
		u, err := session.Run(name, string(src))
		cspan.End()
		col.Add("time.compile_ns", int64(cspan.Duration()))
		if err != nil {
			fatal(err)
		}
		col.Add("build.compiled", 1)
		binPath := filepath.Join(*outDir, strings.TrimSuffix(name, ".sml")+".bin")
		pspan := uspan.Child(obs.CatPhase, "pickle")
		data, err := binfile.EncodeObserved(u, col)
		pspan.End()
		col.Add("time.pickle_ns", int64(pspan.Duration()))
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(binPath, data, 0o644); err != nil {
			fatal(err)
		}
		uspan.Arg("pid", u.StatPid.Short()).End()
		fmt.Printf("%s: interface %s -> %s\n", name, u.StatPid.Short(), binPath)
		if *verbose {
			for i, im := range u.Imports {
				fmt.Printf("  import[%d] %s\n", i, im)
			}
			for _, w := range u.Warnings {
				fmt.Printf("  warning: %s\n", w)
			}
		}
	}
	root.End()
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := col.WriteTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *report == "json" {
		summary := struct {
			Schema   string           `json:"schema"`
			Tool     string           `json:"tool"`
			Units    int              `json:"units"`
			Counters map[string]int64 `json:"counters"`
		}{"smlc-report/1", "smlc", flag.NArg(), col.Counters()}
		data, err := json.Marshal(summary)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, string(data))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smlc:", err)
	os.Exit(1)
}
