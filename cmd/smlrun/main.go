// Command smlrun builds and executes a program given as SML source
// files: dependencies are discovered automatically (§6), the units are
// compiled or reloaded in topological order, type-safe linkage is
// enforced, and the program runs. With -bin, pre-compiled bin files
// are rehydrated, verified, and linked instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/binfile"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/linker"
	"repro/internal/obs"
	"repro/internal/pid"
	"repro/internal/prof"
)

func main() {
	binMode := flag.Bool("bin", false, "arguments are bin files to link and run")
	storeDir := flag.String("store", "", "bin cache directory (enables incremental reuse)")
	jobs := flag.Int("j", 0, "parallel build workers (0 = one per core)")
	verbose := flag.Bool("v", false, "log per-unit actions")
	tracePath := flag.String("trace", "", "write Chrome trace_event JSON to this file")
	explain := flag.Bool("explain", false, "stream one rebuild-decision JSON record per unit to stderr")
	report := flag.String("report", "", "with 'json', write a machine-readable build report line to stderr")
	execFlag := flag.String("exec", "closure", "execution engine: closure (compiled) or tree (interpreter)")
	profileOut := flag.String("profile", "", "profile SML execution; write <base>.json, <base>.folded, <base>.pb")
	profPeriod := flag.Uint64("profile-period", 0, "sampling period in interpreter steps (0 = default)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr,
			"usage: smlrun [-bin] [-store dir] [-j n] [-v] [-trace out.json] [-explain] [-report json] [-exec closure|tree] [-profile base] [-profile-period n] file ...")
		os.Exit(2)
	}
	if *report != "" && *report != "json" {
		fatal(fmt.Errorf("unknown -report format %q (want json)", *report))
	}
	engine, err := interp.ParseEngine(*execFlag)
	if err != nil {
		fatal(err)
	}

	if *binMode {
		runBins(flag.Args(), *tracePath, *report, engine, *profileOut, *profPeriod)
		return
	}

	col := obs.New()
	m := core.NewManager()
	m.Stdout = os.Stdout
	m.Obs = col
	m.Jobs = *jobs
	m.Engine = engine
	if *profileOut != "" {
		m.ProfilePeriod = *profPeriod
		if m.ProfilePeriod == 0 {
			m.ProfilePeriod = interp.DefaultProfilePeriod
		}
	}
	if *verbose {
		m.Log = os.Stderr
	}
	if *storeDir != "" {
		store, err := core.NewDirStore(*storeDir)
		if err != nil {
			fatal(err)
		}
		store.Obs = col
		m.Store = store
	}

	var files []core.File
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		files = append(files, core.File{Name: filepath.Base(path), Source: string(src)})
	}
	_, buildErr := m.Build(files)
	if *tracePath != "" {
		writeTrace(col, *tracePath)
	}
	if *profileOut != "" && m.Prof != nil {
		name := "smlrun"
		if flag.NArg() > 0 {
			name = filepath.Base(flag.Arg(0))
		}
		if err := m.Prof.WriteFiles(*profileOut, name); err != nil {
			fatal(err)
		}
	}
	if *explain {
		if err := obs.WriteExplainJSONL(os.Stderr, m.Explains); err != nil {
			fatal(err)
		}
	}
	if buildErr != nil {
		fatal(buildErr)
	}
	if *report == "json" {
		// The program's own output owns stdout; the report goes to
		// stderr as a single JSON line.
		name := "smlrun"
		if flag.NArg() > 0 {
			name = filepath.Base(flag.Arg(0))
		}
		data, err := json.Marshal(m.Report(name))
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, string(data))
	}
	if *verbose {
		st := m.Stats
		fmt.Fprintf(os.Stderr, "units=%d compiled=%d loaded=%d cutoffs=%d corrupt=%d recovered=%d\n",
			st.Units, st.Compiled, st.Loaded, st.Cutoffs, st.Corrupt, st.Recovered)
	}
}

// writeTrace writes the collector's Chrome trace_event file.
func writeTrace(col *obs.Collector, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := col.WriteTrace(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// runBins rehydrates, verifies, and executes pre-compiled bin files.
// The execute phase runs under a collector, so even a bin-only run
// gets per-unit execute spans (-trace) and exec.* counters
// (-report json) — and, with -profile, the same three profile
// artifacts a source build writes (bins carry no source text, so
// line numbers are absent from the symbolization).
func runBins(paths []string, tracePath, report string, engine interp.Engine,
	profileOut string, profPeriod uint64) {
	session, err := compiler.NewSessionWith(os.Stdout, engine)
	if err != nil {
		fatal(err)
	}
	if profileOut != "" {
		// The prelude already executed (inside NewSessionWith, before
		// profiling starts) so it contributes no samples, but register
		// it anyway: program closures that call into prelude functions
		// should attribute those frames by name.
		session.Machine.StartProfile(profPeriod)
		for _, u := range session.Units {
			session.Machine.ProfRegister(u.Name, u.Prog, u.Code)
		}
	}

	// First pass: headers only, to order rehydration so providers load
	// before dependents regardless of argument order.
	type binInfo struct {
		path    string
		data    []byte
		exports map[pid.Pid]bool
		imports []pid.Pid
	}
	infos := make([]*binInfo, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		_, statPid, imports, numSlots, err := binfile.ReadHeader(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", path, err))
		}
		bi := &binInfo{path: path, data: data, imports: imports, exports: map[pid.Pid]bool{}}
		for i := 0; i < numSlots; i++ {
			bi.exports[statPid.Plus(uint64(i+1))] = true
		}
		infos = append(infos, bi)
	}
	providerOf := func(p pid.Pid) *binInfo {
		for _, bi := range infos {
			if bi.exports[p] {
				return bi
			}
		}
		return nil
	}
	loaded := map[*binInfo]bool{}
	var units []*compiler.Unit
	var load func(bi *binInfo)
	load = func(bi *binInfo) {
		if loaded[bi] {
			return
		}
		loaded[bi] = true
		for _, im := range bi.imports {
			if p := providerOf(im); p != nil && p != bi {
				load(p)
			}
		}
		u, err := binfile.Read(bi.data, session.Index)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", bi.path, err))
		}
		session.Index.AddEnv(u.Env)
		units = append(units, u)
	}
	for _, bi := range infos {
		load(bi)
	}
	if errs := linker.Verify(units, session.Dyn); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "smlrun:", e)
		}
		os.Exit(1)
	}
	col := obs.New()
	col.BeginBuild()
	session.Dyn.Obs = col
	session.Machine.Obs = col
	rspan := col.StartSpan(obs.CatBuild, "run-bins")
	runErr := linker.RunObserved(session.Machine, units, session.Dyn, rspan, col)
	rspan.End()
	if tracePath != "" {
		writeTrace(col, tracePath)
	}
	if profileOut != "" {
		b := prof.NewBuilder(engine.String(), session.Machine.ProfilePeriod())
		for _, u := range session.Units {
			b.AddUnit(u.Name, u.Code, u.Env, compiler.PreludeSource)
		}
		for _, u := range units {
			b.AddUnit(u.Name, u.Code, u.Env, "")
		}
		for _, up := range session.Machine.TakeUnitProfiles() {
			b.Add(up)
		}
		if err := b.Finish().WriteFiles(profileOut, "run-bins"); err != nil {
			fatal(err)
		}
	}
	if report == "json" {
		rep := map[string]any{"schema": obs.ReportSchema, "name": "run-bins",
			"counters": col.Counters()}
		data, err := json.Marshal(rep)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, string(data))
	}
	if runErr != nil {
		fatal(runErr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smlrun:", err)
	os.Exit(1)
}
