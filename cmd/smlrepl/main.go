// Command smlrepl is the interactive top-level loop: each input is
// compiled as a compilation unit against the session environment and
// executed, per §3 and §7 of the paper. Inputs end with ";"; "quit;"
// exits.
package main

import (
	"fmt"
	"os"

	"repro/internal/repl"
)

func main() {
	r, err := repl.New(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smlrepl:", err)
		os.Exit(1)
	}
	fmt.Println("Standard ML separate-compilation REPL (quit; to exit)")
	if err := r.Interact(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smlrepl:", err)
		os.Exit(1)
	}
}
