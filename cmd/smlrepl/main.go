// Command smlrepl is the interactive top-level loop: each input is
// compiled as a compilation unit against the session environment and
// executed, per §3 and §7 of the paper. Inputs end with ";"; "quit;"
// exits.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/obsserve"
	"repro/internal/repl"
)

func main() {
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the session to this file on exit")
	serveAddr := flag.String("serve", "", "serve /metrics and /debug/pprof on this address for the session's lifetime")
	execFlag := flag.String("exec", "closure", "execution engine: closure (compiled) or tree (interpreter)")
	flag.Parse()

	engine, err := interp.ParseEngine(*execFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smlrepl:", err)
		os.Exit(1)
	}
	r, err := repl.NewWith(os.Stdout, engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smlrepl:", err)
		os.Exit(1)
	}
	var col *obs.Collector
	if *tracePath != "" || *serveAddr != "" {
		col = obs.New()
		r.Obs = col
	}
	if *serveAddr != "" {
		// A long-lived REPL is the process worth watching live: each
		// "declaration unit" bumps the repl.* and exec.* counters the
		// scrape sees.
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smlrepl:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "smlrepl: listening on %s\n", ln.Addr())
		go http.Serve(ln, obsserve.New(col, nil).Handler())
	}
	fmt.Println("Standard ML separate-compilation REPL (quit; to exit)")
	interactErr := r.Interact(os.Stdin, os.Stdout)
	if col != nil && *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smlrepl:", err)
			os.Exit(1)
		}
		if err := col.WriteTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "smlrepl:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "smlrepl:", err)
			os.Exit(1)
		}
	}
	if interactErr != nil {
		fmt.Fprintln(os.Stderr, "smlrepl:", interactErr)
		os.Exit(1)
	}
}
