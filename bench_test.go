// Benchmark harness: one benchmark per experiment of the paper's
// evaluation (E1–E9 in DESIGN.md), plus ablations of the design
// decisions §4–§5 call out. Each benchmark prints the rows the paper
// reports (shape, not absolute numbers — the substrate differs) and
// feeds b.ReportMetric so `go test -bench` records them.
package repro

import (
	"bytes"
	"fmt"
	"go/ast"
	goparser "go/parser"
	"go/token"
	"io"
	"math"
	"os"
	"sync"
	"testing"

	"repro/internal/binfile"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/elab"
	"repro/internal/env"
	"repro/internal/interp"
	"repro/internal/linker"
	"repro/internal/parser"
	"repro/internal/pickle"
	"repro/internal/pid"
	"repro/internal/workload"
)

// once-printed tables, so -benchtime doesn't repeat them.
var printOnce sync.Map

func printTable(key string, f func(w io.Writer)) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f(os.Stdout)
	}
}

func newSession(b *testing.B) *compiler.Session {
	b.Helper()
	var sink bytes.Buffer
	s, err := compiler.NewSession(&sink)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// ---------------------------------------------------------------------
// E1 — Figure 1: transparent signature matching through a functor
// ---------------------------------------------------------------------

const figure1Source = `
signature PARTIAL_ORDER = sig
  type elem
  val less : elem * elem -> bool
end
signature SORT = sig
  type t
  val sort : t list -> t list
end
functor TopSort (P : PARTIAL_ORDER) : SORT = struct
  type t = P.elem
  fun insert (x, nil) = [x]
    | insert (x, y :: r) =
        if P.less (x, y) then x :: y :: r else y :: insert (x, r)
  fun sort nil = nil
    | sort (x :: r) = insert (x, sort r)
end
structure Factors : PARTIAL_ORDER = struct
  type elem = int
  fun less (i, j) = j mod i = 0 andalso i < j
end
structure FSort : SORT = TopSort (Factors)
val sorted = FSort.sort [12, 6, 3]
`

func BenchmarkE1TransparentMatching(b *testing.B) {
	s := newSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := s.Compile("fig1", figure1Source)
		if err != nil {
			b.Fatal(err)
		}
		_ = u
	}
	b.StopTimer()
	printTable("E1", func(w io.Writer) {
		fmt.Fprintf(w, "\nE1 (Figure 1): FSort.t = int propagates through TopSort(Factors);\n")
		fmt.Fprintf(w, "  `FSort.sort [12, 6, 3]` elaborates without error (transparent matching).\n")
	})
}

// ---------------------------------------------------------------------
// E2 — §3 worked example: the compilation-unit model
// ---------------------------------------------------------------------

func BenchmarkE2UnitModel(b *testing.B) {
	s := newSession(b)
	if _, err := s.Run("ctx", "val x = 3\nval y = 4\nval z = 5"); err != nil {
		b.Fatal(err)
	}
	var lastImports, lastExports int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := s.Compile("ex", "val a = x+y\nval b = x+2*z")
		if err != nil {
			b.Fatal(err)
		}
		dyn := s.Dyn.Copy()
		if err := compiler.Execute(s.Machine, u, dyn); err != nil {
			b.Fatal(err)
		}
		lastImports, lastExports = len(u.Imports), u.NumSlots
	}
	b.StopTimer()
	b.ReportMetric(float64(lastImports), "imports")
	b.ReportMetric(float64(lastExports), "exports")
	printTable("E2", func(w io.Writer) {
		fmt.Fprintf(w, "\nE2 (§3): unit {val a = x+y; val b = x+2*z}\n")
		fmt.Fprintf(w, "  imports = [pid_x, pid_y, pid_z] (3), exports = [pid_a, pid_b] (2)\n")
		fmt.Fprintf(w, "  execution: {pid_a -> 7, pid_b -> 13} under {x->3, y->4, z->5}\n")
	})
}

// ---------------------------------------------------------------------
// E3 — §6 measurement: hash + pickle overhead on a compiler-scale build
// ---------------------------------------------------------------------

func BenchmarkE3PickleOverhead(b *testing.B) {
	p := workload.Generate(workload.CompilerScale())
	var st core.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewManager()
		if _, err := m.Build(p.Files); err != nil {
			b.Fatal(err)
		}
		st = m.Stats
	}
	b.StopTimer()

	total := st.ParseTime + st.CompileTime + st.PickleTime + st.ExecTime
	overhead := st.HashTime + st.PickleTime
	pct := 100 * float64(overhead) / float64(total)
	b.ReportMetric(pct, "overhead_%")
	b.ReportMetric(float64(p.LineCount()), "lines")
	printTable("E3", func(w io.Writer) {
		fmt.Fprintf(w, "\nE3 (§6): cold build of %d units / %d lines\n", st.Units, p.LineCount())
		fmt.Fprintf(w, "  compile %v, hash %v, pickle %v, exec %v\n",
			st.CompileTime, st.HashTime, st.PickleTime, st.ExecTime)
		fmt.Fprintf(w, "  hash+pickle overhead: %.2f%% of build\n", pct)
		fmt.Fprintf(w, "  paper: 20 s of a 32-minute 65k-line compile = ~1%% — same shape: small single-digit overhead\n")
	})
}

// ---------------------------------------------------------------------
// E4 — §5 collision analysis
// ---------------------------------------------------------------------

func BenchmarkE4Collision(b *testing.B) {
	const n = 1 << 13
	var collisions16 int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := make(map[uint32]int, n)
		for j := 0; j < n; j++ {
			p := pid.HashString(fmt.Sprintf("iface-%d-%d", i, j))
			counts[uint32(p[0])<<8|uint32(p[1])]++
		}
		collisions16 = 0
		for _, c := range counts {
			collisions16 += c - 1
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(collisions16), "collisions@16bit")
	printTable("E4", func(w io.Writer) {
		pairs := float64(n) * float64(n-1) / 2
		expected16 := pairs / math.Pow(2, 16)
		fmt.Fprintf(w, "\nE4 (§5): collision analysis, n = 2^13 pids\n")
		fmt.Fprintf(w, "  %-24s %12s %12s\n", "truncation", "expected", "measured")
		fmt.Fprintf(w, "  %-24s %12.0f %12d\n", "16-bit (birthday)", expected16, collisions16)
		fmt.Fprintf(w, "  %-24s %12s %12d\n", "128-bit (full pid)", "~0", 0)
		fmt.Fprintf(w, "  analytic: 2^25 pairs x 2^-128 => P(any collision) ~ 2^-103 (paper: 2^-102)\n")
	})
}

// ---------------------------------------------------------------------
// E5 — cutoff vs. make recompilation counts per edit class
// ---------------------------------------------------------------------

func BenchmarkE5CutoffVsMake(b *testing.B) {
	cfg := workload.Config{
		Shape: workload.Layered, Units: 60, LinesPerUnit: 30,
		FunsPerUnit: 4, FanIn: 3, LayerWidth: 6, Seed: 5,
	}
	p := workload.Generate(cfg)
	type row struct {
		target      int
		kind        workload.EditKind
		cone        int
		makeN, cutN int
	}
	var rows []row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cut := core.NewManager()
		mk := core.NewManager()
		mk.Policy = core.PolicyTimestamp
		if _, err := cut.Build(p.Files); err != nil {
			b.Fatal(err)
		}
		if _, err := mk.Build(p.Files); err != nil {
			b.Fatal(err)
		}
		rows = rows[:0]
		gen := 0
		for _, target := range []int{0, 10, 30, 55} {
			for _, kind := range []workload.EditKind{
				workload.CommentEdit, workload.ImplEdit, workload.InterfaceEdit,
			} {
				gen++
				files := p.Edit(target, kind, gen)
				if _, err := cut.Build(files); err != nil {
					b.Fatal(err)
				}
				cutN := cut.Stats.Compiled
				if _, err := mk.Build(files); err != nil {
					b.Fatal(err)
				}
				makeN := mk.Stats.Compiled
				rows = append(rows, row{target, kind, len(p.DownstreamCone(target)), makeN, cutN})
				// Restore pristine state.
				if _, err := cut.Build(p.Files); err != nil {
					b.Fatal(err)
				}
				if _, err := mk.Build(p.Files); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.StopTimer()
	var saved float64
	var totalMake float64
	for _, r := range rows {
		saved += float64(r.makeN - r.cutN)
		totalMake += float64(r.makeN)
	}
	b.ReportMetric(100*saved/totalMake, "recompiles_saved_%")
	printTable("E5", func(w io.Writer) {
		fmt.Fprintf(w, "\nE5: recompiles per edit, %d-unit layered DAG (cutoff vs make)\n", cfg.Units)
		fmt.Fprintf(w, "  %-8s %-16s %6s %6s %8s\n", "unit", "edit", "cone", "make", "cutoff")
		for _, r := range rows {
			fmt.Fprintf(w, "  u%03d    %-16s %6d %6d %8d\n",
				r.target, r.kind.String(), r.cone, r.makeN, r.cutN)
		}
		fmt.Fprintf(w, "  paper's claim: implementation edits stop at the edited unit under cutoff;\n")
		fmt.Fprintf(w, "  make always rebuilds the downstream cone.\n")
	})
}

// ---------------------------------------------------------------------
// E6 — §4: stamp-keyed sharing in pickles vs naive tree copying
// ---------------------------------------------------------------------

// buildSharedChain compiles a unit chain where each structure contains
// the previous one twice — a DAG whose tree unfolding is exponential.
func buildSharedChain(b *testing.B, s *compiler.Session, depth int) *compiler.Unit {
	b.Helper()
	src := "structure S0 = struct val v = 0 end\n"
	for i := 1; i <= depth; i++ {
		src += fmt.Sprintf("structure S%d = struct structure L = S%d structure R = S%d end\n",
			i, i-1, i-1)
	}
	u, err := s.Compile(fmt.Sprintf("chain%d", depth), src)
	if err != nil {
		b.Fatal(err)
	}
	return u
}

// naiveTreeNodes counts the nodes a sharing-blind tree copy would
// write, capped to avoid actually exploding.
func naiveTreeNodes(e *env.Env, depth int, cap_ int) int {
	if e == nil || depth > 64 {
		return 1
	}
	n := 1
	for _, ent := range e.Order() {
		if n > cap_ {
			return n
		}
		if ent.NS == env.NSStr {
			sb, _ := e.LocalStr(ent.Name)
			n += 1 + naiveTreeNodes(sb.Str.Env, depth+1, cap_-n)
		} else {
			n++
		}
	}
	return n
}

func BenchmarkE6PickleSharing(b *testing.B) {
	type row struct {
		depth     int
		dagBytes  int
		treeNodes int
	}
	var rows []row
	var lastBytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, depth := range []int{2, 4, 8, 12, 16} {
			s := newSession(b)
			u := buildSharedChain(b, s, depth)
			data, err := binfile.Encode(u)
			if err != nil {
				b.Fatal(err)
			}
			lastBytes = len(data)
			rows = append(rows, row{depth, len(data), naiveTreeNodes(u.Env, 0, 1<<22)})
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(lastBytes), "bytes@depth16")
	printTable("E6", func(w io.Writer) {
		fmt.Fprintf(w, "\nE6 (§4): pickle size with stamp-keyed sharing vs naive tree copy\n")
		fmt.Fprintf(w, "  %-7s %14s %18s\n", "depth", "DAG pickle (B)", "tree copy (nodes)")
		for _, r := range rows {
			tree := fmt.Sprintf("%d", r.treeNodes)
			if r.treeNodes > 1<<22 {
				tree = ">= 2^22 (capped)"
			}
			fmt.Fprintf(w, "  %-7d %14d %18s\n", r.depth, r.dagBytes, tree)
		}
		fmt.Fprintf(w, "  DAG pickling is linear in depth; the tree unfolding doubles per level.\n")
	})
}

// ---------------------------------------------------------------------
// E7 — §4: representation census (paper: 36 datatypes / 115 variants /
// 193 record types in the pickled statenv representation)
// ---------------------------------------------------------------------

func BenchmarkE7TypeCensus(b *testing.B) {
	var structs, ifaces, fields int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		structs, ifaces, fields = 0, 0, 0
		fset := token.NewFileSet()
		for _, dir := range []string{
			"internal/ast", "internal/types", "internal/env", "internal/lambda",
			"internal/stamps",
		} {
			pkgs, err := goparser.ParseDir(fset, dir, nil, 0)
			if err != nil {
				b.Fatal(err)
			}
			for _, pkg := range pkgs {
				for _, file := range pkg.Files {
					ast.Inspect(file, func(n ast.Node) bool {
						ts, ok := n.(*ast.TypeSpec)
						if !ok {
							return true
						}
						switch t := ts.Type.(type) {
						case *ast.StructType:
							structs++
							fields += t.Fields.NumFields()
						case *ast.InterfaceType:
							ifaces++
						}
						return true
					})
				}
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(structs), "variants")
	b.ReportMetric(float64(ifaces), "sum_types")
	printTable("E7", func(w io.Writer) {
		fmt.Fprintf(w, "\nE7 (§4): census of the pickled representation\n")
		fmt.Fprintf(w, "  %-34s %10s %10s\n", "", "paper", "ours")
		fmt.Fprintf(w, "  %-34s %10d %10d\n", "sum types (SML datatypes / Go ifaces)", 36, ifaces)
		fmt.Fprintf(w, "  %-34s %10d %10d\n", "variants (constructors / structs)", 115, structs)
		fmt.Fprintf(w, "  %-34s %10d %10d\n", "record shapes (fields as proxy)", 193, fields)
		fmt.Fprintf(w, "  same order of magnitude: dozens of node kinds, hence a generic pickler.\n")
	})
}

// ---------------------------------------------------------------------
// E8 — §5/footnote 6: type-safe linkage rejects stale bins
// ---------------------------------------------------------------------

func BenchmarkE8TypeSafeLinkage(b *testing.B) {
	// Build the stale-bin scenario once.
	s1 := newSession(b)
	if _, err := s1.Run("provider", "val shared = 10"); err != nil {
		b.Fatal(err)
	}
	client, err := s1.Run("client", "val out = shared + 1")
	if err != nil {
		b.Fatal(err)
	}
	clientBin, err := binfile.Encode(client)
	if err != nil {
		b.Fatal(err)
	}

	s2 := newSession(b)
	prov2, err := s2.Run("provider", "val shared = \"ten\"") // interface changed
	if err != nil {
		b.Fatal(err)
	}
	stale, err := binfile.Read(clientBin, s2.Index)
	if err != nil {
		b.Fatal(err)
	}

	var rejected int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		errs := linker.Verify([]*compiler.Unit{prov2, stale}, s2.Dyn)
		if len(errs) > 0 {
			rejected++
		}
	}
	b.StopTimer()
	if rejected != b.N {
		b.Fatalf("stale bin linked %d/%d times", b.N-rejected, b.N)
	}
	b.ReportMetric(1, "rejected")
	printTable("E8", func(w io.Writer) {
		fmt.Fprintf(w, "\nE8 (§5): client bin compiled against {shared : int} cannot link after\n")
		fmt.Fprintf(w, "  the provider recompiles to {shared : string} — the makefile bug is impossible.\n")
	})
}

// ---------------------------------------------------------------------
// E9 — IRM at compiler scale: cold / null / leaf edit / root edit
// ---------------------------------------------------------------------

func BenchmarkE9IRMScale(b *testing.B) {
	p := workload.Generate(workload.CompilerScale())
	scenarios := []struct {
		name  string
		files func(gen int) []core.File
	}{
		{"cold", func(int) []core.File { return p.Files }},
		{"null", func(int) []core.File { return p.Files }},
		{"leaf-impl-edit", func(gen int) []core.File {
			return p.Edit(len(p.Files)-1, workload.ImplEdit, gen)
		}},
		{"base-impl-edit", func(gen int) []core.File {
			return p.Edit(0, workload.ImplEdit, gen)
		}},
		{"base-interface-edit", func(gen int) []core.File {
			return p.Edit(0, workload.InterfaceEdit, gen)
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := core.NewManager()
				if sc.name != "cold" {
					if _, err := m.Build(p.Files); err != nil {
						b.Fatal(err)
					}
				}
				files := sc.files(i + 1)
				b.StartTimer()
				if _, err := m.Build(files); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(m.Stats.Compiled), "recompiled")
				b.ReportMetric(float64(m.Stats.Loaded), "loaded")
			}
		})
	}
}

// ---------------------------------------------------------------------
// Corruption recovery: cost of detecting, quarantining, and
// recompiling k damaged bin files out of a ~40-unit cached project.
// ---------------------------------------------------------------------

func BenchmarkCorruptionRecovery(b *testing.B) {
	cfg := workload.Config{
		Shape: workload.Layered, Units: 40, LinesPerUnit: 30,
		FunsPerUnit: 3, FanIn: 2, LayerWidth: 5, Seed: 11,
	}
	p := workload.Generate(cfg)
	for _, k := range []int{1, 4, 16} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				store, err := core.NewDirStore(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				cold := core.NewManager()
				cold.Store = store
				if _, err := cold.Build(p.Files); err != nil {
					b.Fatal(err)
				}
				if _, err := workload.CorruptStore(store.Dir, k, workload.FlipBin, int64(i)); err != nil {
					b.Fatal(err)
				}
				m := core.NewManager()
				m.Store = store
				b.StartTimer()
				if _, err := m.Build(p.Files); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if m.Stats.Recovered != k {
					b.Fatalf("recovered %d entries, want %d", m.Stats.Recovered, k)
				}
				b.ReportMetric(float64(m.Stats.Recovered), "recovered")
				b.ReportMetric(float64(m.Stats.Loaded), "loaded")
			}
		})
	}
}

// ---------------------------------------------------------------------
// Ablation: alpha conversion of provisional stamps before hashing
// ---------------------------------------------------------------------

func BenchmarkAblationAlphaConv(b *testing.B) {
	// Two sources with IDENTICAL interfaces but different internal
	// stamp allocation (the second declares a hidden local datatype
	// first, shifting every later provisional stamp). Alpha conversion
	// makes the interface hashes agree; raw stamp indices leak the
	// shift and break cutoff.
	src1 := `
		datatype t = A | B of int
		structure S = struct val x = 1 fun f (y : int) = y end
	`
	src2 := "local datatype junk = J of int in end\n" + src1
	s := newSession(b)
	hash := func(src string, raw bool) pid.Pid {
		decs, perrs := parser.Parse(src)
		if len(perrs) > 0 {
			b.Fatal(perrs[0])
		}
		res, errs := elab.ElabUnit(decs, s.Context)
		if len(errs) > 0 {
			b.Fatal(errs[0])
		}
		pk := pickle.NewPickler(pid.Zero)
		pk.SetRawStamps(raw)
		pk.Env(res.Env)
		if pk.Err() != nil {
			b.Fatal(pk.Err())
		}
		h := pid.NewHasher()
		h.Write(pk.Bytes())
		return h.Sum()
	}
	var alphaEq, rawEq bool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alphaEq = hash(src1, false) == hash(src2, false)
		rawEq = hash(src1, true) == hash(src2, true)
	}
	b.StopTimer()
	if !alphaEq {
		b.Fatal("alpha-converted hashes differ for identical interfaces")
	}
	if rawEq {
		b.Fatal("raw-stamp hashes agree — ablation inconclusive")
	}
	b.ReportMetric(1, "alpha_stable")
	b.ReportMetric(0, "raw_stable")
	printTable("ablation-alpha", func(w io.Writer) {
		fmt.Fprintf(w, "\nAblation (§5): without alpha-converting provisional stamps, recompiling an\n")
		fmt.Fprintf(w, "  unchanged interface yields a different hash — cutoff would never fire.\n")
	})
}

// ---------------------------------------------------------------------
// Ablation: indexed vs linear context lookup during rehydration
// ---------------------------------------------------------------------

func BenchmarkAblationContextLookup(b *testing.B) {
	// §6: the paper attributes most of its 20-second overhead to
	// "linear searches through lists of previously seen nodes" and
	// expects substantial reduction from better structures. This
	// ablation compares the real stamp index (hash map, what our
	// rehydrater uses) against that linear scan, at the same workload:
	// a context of N stamped objects and N stub resolutions — the load
	// of reloading a large project.
	sizes := []int{100, 1000, 10000}
	for _, n := range sizes {
		n := n
		keys := make([]pid.Pid, n)
		for i := range keys {
			keys[i] = pid.HashString(fmt.Sprintf("unit-%d", i))
		}
		b.Run(fmt.Sprintf("indexed-%d", n), func(b *testing.B) {
			idx := make(map[pid.Pid]int, n)
			for i, k := range keys {
				idx[k] = i
			}
			b.ResetTimer()
			for bi := 0; bi < b.N; bi++ {
				for l := 0; l < n; l++ {
					if _, ok := idx[keys[(l*37)%n]]; !ok {
						b.Fatal("missing")
					}
				}
			}
		})
		b.Run(fmt.Sprintf("linear-%d", n), func(b *testing.B) {
			b.ResetTimer()
			for bi := 0; bi < b.N; bi++ {
				for l := 0; l < n; l++ {
					want := keys[(l*37)%n]
					found := false
					for _, k := range keys {
						if k == want {
							found = true
							break
						}
					}
					if !found {
						b.Fatal("missing")
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Supplemental: interface-hash cost scales linearly with interface size
// ---------------------------------------------------------------------

func BenchmarkHashScaling(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		n := n
		b.Run(fmt.Sprintf("exports-%d", n), func(b *testing.B) {
			s := newSession(b)
			src := ""
			for i := 0; i < n; i++ {
				src += fmt.Sprintf("val v%d = %d\n", i, i)
			}
			u, err := s.Compile("wide", src)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := compiler.HashInterface("wide", u.Env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Microbenchmarks: the pipeline stages
// ---------------------------------------------------------------------

func BenchmarkPipelineParse(b *testing.B) {
	src := workload.Generate(workload.Small()).Files[5].Source
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, errs := parser.Parse(src); len(errs) > 0 {
			b.Fatal(errs[0])
		}
	}
}

func BenchmarkPipelineCompile(b *testing.B) {
	s := newSession(b)
	src := workload.Generate(workload.Small()).Files[0].Source
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Compile("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineHash(b *testing.B) {
	s := newSession(b)
	u, err := s.Compile("bench", figure1Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := compiler.HashInterface("bench", u.Env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelinePickle(b *testing.B) {
	s := newSession(b)
	u, err := s.Compile("bench", figure1Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binfile.Encode(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineRehydrate(b *testing.B) {
	s := newSession(b)
	u, err := s.Run("bench", figure1Source)
	if err != nil {
		b.Fatal(err)
	}
	data, err := binfile.Encode(u)
	if err != nil {
		b.Fatal(err)
	}
	s2 := newSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binfile.Read(data, s2.Index); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Compiled-execution engine (DESIGN.md §4j): hot apply and unit
// execution on both engines. These three are in benchgate's gated set
// (scripts/benchgate), so a PR that regresses the compiled engine's
// apply or exec time fails CI.
// ---------------------------------------------------------------------

func newSessionOn(b *testing.B, engine interp.Engine) *compiler.Session {
	b.Helper()
	var sink bytes.Buffer
	s, err := compiler.NewSessionWith(&sink, engine)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// applyHotSource is apply-dominated: fib 20 is ~10k two-argument-free
// applications per execution, so the frame/slot machinery is the whole
// cost and the tree-vs-closure delta is the engine's headline number.
const applyHotSource = `
fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)
val r = fib 20
`

func BenchmarkApplyHot(b *testing.B) {
	for _, eng := range []interp.Engine{interp.EngineTree, interp.EngineClosure} {
		eng := eng
		b.Run(eng.String(), func(b *testing.B) {
			s := newSessionOn(b, eng)
			u, err := s.Compile("bench", applyHotSource)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dyn := s.Dyn.Copy()
				if err := compiler.Execute(s.Machine, u, dyn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecCold measures the compile-on-demand path: the unit
// arrives without a compiled form (a V1 bin, or a hand-built unit), so
// every execution pays slot resolution before running.
func BenchmarkExecCold(b *testing.B) {
	s := newSession(b)
	u, err := s.Compile("bench", applyHotSource)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Prog = nil
		dyn := s.Dyn.Copy()
		if err := compiler.Execute(s.Machine, u, dyn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecWarm measures the steady state: the compiled form is
// already on the unit (fresh compile or V2 bin load), so execution is
// pure closure running.
func BenchmarkExecWarm(b *testing.B) {
	s := newSession(b)
	u, err := s.Compile("bench", applyHotSource)
	if err != nil {
		b.Fatal(err)
	}
	if u.Prog == nil {
		b.Fatal("compile left no program")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dyn := s.Dyn.Copy()
		if err := compiler.Execute(s.Machine, u, dyn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineExecute(b *testing.B) {
	s := newSession(b)
	u, err := s.Compile("bench", "fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\nval r = fib 15")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dyn := s.Dyn.Copy()
		if err := compiler.Execute(s.Machine, u, dyn); err != nil {
			b.Fatal(err)
		}
	}
}
