// Package repro is a full reproduction of Appel & MacQueen, "Separate
// Compilation for Standard ML" (PLDI 1994): an SML-subset compiler
// front end, the compilation-unit model (compile : source × statenv →
// unit; execute : code × dynenv → dynenv), persistent identifiers,
// intrinsic-pid hashing with cutoff recompilation, static-environment
// pickling (dehydration/rehydration with stamp-keyed sharing and
// stubs), type-safe linkage, and the IRM compilation manager — all in
// pure Go with no dependencies outside the standard library.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-versus-measured record, and bench_test.go for the harness that
// regenerates every quantitative claim of the paper.
package repro
