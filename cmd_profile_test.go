package repro

// End-to-end tests of the SML-level execution profiler's surfaces
// (DESIGN.md §4k): `irm profile`, `irm build -profile`, `smlrun
// -profile`, the daemon's /debug/sml/profile endpoint, and `irm top
// -by`. The load-bearing claims: the irm-profile/1 artifacts are
// byte-identical at any -j and across daemon/local runs, profiling
// never perturbs a store byte, and the pprof encoding loads in
// `go tool pprof`.

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeFibProject writes the apply-heavy two-unit workload the
// profiler tests build: a recursive library and a driver. Under the
// closure engine steps accrue per application, so recursion is what
// makes samples appear.
func writeFibProject(t *testing.T, dir string) string {
	t.Helper()
	writeFile(t, filepath.Join(dir, "a.sml"),
		"fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\n"+
			"fun tri n = if n = 0 then 0 else n + tri (n-1)\n")
	writeFile(t, filepath.Join(dir, "b.sml"),
		"val x = fib 16\nval y = tri 100\n")
	group := filepath.Join(dir, "group.cm")
	writeFile(t, group, "a.sml\nb.sml\n")
	return group
}

// storeDigest hashes every regular file of a store directory except
// lock files, keyed by relative path.
func storeDigest(t *testing.T, dir string) map[string]string {
	t.Helper()
	sums := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasSuffix(path, ".lock") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		sums[rel] = fmt.Sprintf("%x", sha256.Sum256(data))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sums
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestProfilerCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "irm", "smlrun")
	work := t.TempDir()
	group := writeFibProject(t, work)

	t.Run("profile-command", func(t *testing.T) {
		base := filepath.Join(work, "pc")
		out, err := runTool(t, tools["irm"], "", "profile", group,
			"-store", filepath.Join(work, "pc-store"), "-history", "off", "-o", base)
		if err != nil {
			t.Fatalf("irm profile: %v\n%s", err, out)
		}
		for _, want := range []string{"fib", "tri", "SELF-STEPS", "engine closure"} {
			if !strings.Contains(out, want) {
				t.Errorf("table output lacks %q:\n%s", want, out)
			}
		}
		folded := string(readFileT(t, base+".folded"))
		if !strings.Contains(folded, "a.sml:fib") {
			t.Errorf("folded output lacks a.sml:fib:\n%s", folded)
		}
	})

	t.Run("deterministic-across-jobs", func(t *testing.T) {
		bases := []string{}
		for i, jobs := range []string{"1", "8"} {
			base := filepath.Join(work, fmt.Sprintf("dj%d", i))
			out, err := runTool(t, tools["irm"], "", "build", group,
				"-store", filepath.Join(work, fmt.Sprintf("dj%d-store", i)),
				"-daemon", "off", "-history", "off", "-j", jobs, "-profile", base)
			if err != nil {
				t.Fatalf("irm build -profile -j %s: %v\n%s", jobs, err, out)
			}
			bases = append(bases, base)
		}
		for _, ext := range []string{".json", ".folded", ".pb"} {
			a, b := readFileT(t, bases[0]+ext), readFileT(t, bases[1]+ext)
			if string(a) != string(b) {
				t.Errorf("%s differs between -j1 and -j8", ext)
			}
		}
	})

	t.Run("bins-unchanged-by-profiling", func(t *testing.T) {
		plain, profiled := filepath.Join(work, "bu-plain"), filepath.Join(work, "bu-prof")
		if out, err := runTool(t, tools["irm"], "", "build", group,
			"-store", plain, "-daemon", "off", "-history", "off"); err != nil {
			t.Fatalf("unprofiled build: %v\n%s", err, out)
		}
		if out, err := runTool(t, tools["irm"], "", "build", group,
			"-store", profiled, "-daemon", "off", "-history", "off",
			"-profile", filepath.Join(work, "bu")); err != nil {
			t.Fatalf("profiled build: %v\n%s", err, out)
		}
		a, b := storeDigest(t, plain), storeDigest(t, profiled)
		if len(a) == 0 {
			t.Fatal("store digest empty")
		}
		for rel, sum := range a {
			if b[rel] != sum {
				t.Errorf("store file %s differs under profiling", rel)
			}
		}
		if len(a) != len(b) {
			t.Errorf("store file count differs: %d vs %d", len(a), len(b))
		}
	})

	t.Run("report-schema-golden", func(t *testing.T) {
		var report map[string]any
		if err := json.Unmarshal(readFileT(t, filepath.Join(work, "dj0.json")), &report); err != nil {
			t.Fatal(err)
		}
		got := strings.Join(keyPaths(report), "\n") + "\n"
		goldenPath := filepath.Join("testdata", "profile_schema.golden")
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("reading golden: %v (regenerate with the paths below)\n%s", err, got)
		}
		if got != string(want) {
			t.Errorf("irm-profile/1 schema drifted from %s.\ngot:\n%s\nwant:\n%s",
				goldenPath, got, want)
		}
	})

	t.Run("tree-vs-closure", func(t *testing.T) {
		type rep struct {
			Engine    string `json:"engine"`
			Functions []struct {
				Name    string `json:"name"`
				Unit    string `json:"unit"`
				Applies int64  `json:"applies"`
			} `json:"functions"`
		}
		applies := func(base string) (string, map[string]int64) {
			var r rep
			if err := json.Unmarshal(readFileT(t, base+".json"), &r); err != nil {
				t.Fatal(err)
			}
			m := map[string]int64{}
			for _, f := range r.Functions {
				m[f.Unit+":"+f.Name] = f.Applies
			}
			return r.Engine, m
		}
		base := filepath.Join(work, "tv")
		if out, err := runTool(t, tools["irm"], "", "profile", group,
			"-store", filepath.Join(work, "tv-store"), "-history", "off",
			"-exec", "tree", "-o", base); err != nil {
			t.Fatalf("irm profile -exec tree: %v\n%s", err, out)
		}
		treeEng, tree := applies(base)
		closureEng, closure := applies(filepath.Join(work, "dj0"))
		if treeEng != "tree" || closureEng != "closure" {
			t.Fatalf("engines %q/%q, want tree/closure", treeEng, closureEng)
		}
		for _, fn := range []string{"a.sml:fib", "a.sml:tri"} {
			if tree[fn] != closure[fn] || tree[fn] == 0 {
				t.Errorf("%s applies: tree %d, closure %d", fn, tree[fn], closure[fn])
			}
		}
	})

	t.Run("pprof-loads", func(t *testing.T) {
		goBin, err := exec.LookPath("go")
		if err != nil {
			t.Skip("go tool unavailable")
		}
		out, err := exec.Command(goBin, "tool", "pprof", "-raw",
			filepath.Join(work, "dj0.pb")).CombinedOutput()
		if err != nil {
			t.Fatalf("go tool pprof -raw: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "fib") {
			t.Errorf("pprof -raw output lacks fib:\n%s", out)
		}
	})

	t.Run("smlrun-profile", func(t *testing.T) {
		base := filepath.Join(work, "sr")
		out, err := runTool(t, tools["smlrun"], "", "-profile", base,
			filepath.Join(work, "a.sml"), filepath.Join(work, "b.sml"))
		if err != nil {
			t.Fatalf("smlrun -profile: %v\n%s", err, out)
		}
		if folded := string(readFileT(t, base+".folded")); !strings.Contains(folded, "a.sml:fib") {
			t.Errorf("smlrun folded output lacks a.sml:fib:\n%s", folded)
		}
	})

	t.Run("top-by", func(t *testing.T) {
		hist := filepath.Join(work, "tb-hist")
		if out, err := runTool(t, tools["irm"], "", "build", group,
			"-store", filepath.Join(work, "tb-store"), "-daemon", "off",
			"-history", hist, "-profile", filepath.Join(work, "tb")); err != nil {
			t.Fatalf("profiled build: %v\n%s", err, out)
		}
		out, err := runTool(t, tools["irm"], "", "top", "-dir", hist, "-by", "exec")
		if err != nil {
			t.Fatalf("irm top -by exec: %v\n%s", err, out)
		}
		if !strings.Contains(out, "b.sml") || !strings.Contains(out, "EXEC-TOTAL") {
			t.Errorf("top -by exec output:\n%s", out)
		}
		out, err = runTool(t, tools["irm"], "", "top", "-dir", hist, "-by", "fn")
		if err != nil {
			t.Fatalf("irm top -by fn: %v\n%s", err, out)
		}
		if !strings.Contains(out, "fib") || !strings.Contains(out, "SELF-STEPS") {
			t.Errorf("top -by fn output:\n%s", out)
		}
	})
}

// TestProfilerDaemon checks the daemon surface: a daemon started with
// -profile serves the latest build's profile on /debug/sml/profile,
// and its folded bytes equal a local in-process profiled build of the
// same sources.
func TestProfilerDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "irm")
	work := t.TempDir()
	group := writeFibProject(t, work)

	// Local reference run first (its own store).
	localBase := filepath.Join(work, "local")
	if out, err := runTool(t, tools["irm"], "", "build", group,
		"-store", filepath.Join(work, "local-store"), "-daemon", "off",
		"-history", "off", "-profile", localBase); err != nil {
		t.Fatalf("local profiled build: %v\n%s", err, out)
	}

	store := filepath.Join(work, "daemon-store")
	socket, _, _ := startDaemonCmd(t, tools["irm"], "-store", store, "-profile", "-history", "off")

	client := &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				return net.Dial("unix", socket)
			},
		},
		Timeout: 10 * time.Second,
	}
	get := func(path string) (int, []byte) {
		resp, err := client.Get("http://daemon" + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// Before any build: the endpoint exists but has nothing to serve.
	if code, _ := get("/debug/sml/profile"); code != http.StatusNotFound {
		t.Errorf("pre-build scrape status %d, want 404", code)
	}

	if out, err := runTool(t, tools["irm"], "", "build", group,
		"-store", store, "-daemon", socket, "-history", "off"); err != nil {
		t.Fatalf("build via daemon: %v\n%s", err, out)
	}

	code, folded := get("/debug/sml/profile?format=folded")
	if code != http.StatusOK {
		t.Fatalf("folded scrape status %d", code)
	}
	if want := readFileT(t, localBase+".folded"); string(folded) != string(want) {
		t.Errorf("daemon folded profile differs from local run.\ndaemon:\n%s\nlocal:\n%s",
			folded, want)
	}
	code, body := get("/debug/sml/profile")
	if code != http.StatusOK {
		t.Fatalf("json scrape status %d", code)
	}
	var rep struct {
		Schema string `json:"schema"`
		Engine string `json:"engine"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("scraped profile is not JSON: %v", err)
	}
	if rep.Schema != "irm-profile/1" || rep.Engine != "closure" {
		t.Errorf("scraped report schema=%q engine=%q", rep.Schema, rep.Engine)
	}
	if code, pb := get("/debug/sml/profile?format=pprof"); code != http.StatusOK || len(pb) == 0 {
		t.Errorf("pprof scrape status %d, %d bytes", code, len(pb))
	}
}
