package repro

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// runToolSplit runs a tool capturing stdout and stderr separately —
// the telemetry contract puts reports on stdout and explain streams
// on stderr, and the tests must see them apart.
func runToolSplit(t *testing.T, bin string, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err = cmd.Run()
	return out.String(), errb.String(), err
}

// lastLine returns the final non-empty line of s.
func lastLine(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return lines[len(lines)-1]
}

// keyPaths flattens a decoded JSON value into sorted dotted key
// paths. Dynamic maps (counters) are collapsed to a single ".*" entry
// so the schema stays stable as instrumentation grows; arrays
// contribute the paths of their first element under "[]".
func keyPaths(v any) []string {
	var paths []string
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, child := range x {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				if k == "counters" {
					paths = append(paths, p+".*")
					continue
				}
				paths = append(paths, p)
				walk(p, child)
			}
		case []any:
			if len(x) > 0 {
				walk(prefix+"[]", x[0])
			}
		}
	}
	walk("", v)
	sort.Strings(paths)
	return paths
}

// traceEvent mirrors the Chrome trace_event fields the tests check.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func TestTelemetryCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "irm")
	work := t.TempDir()

	libPath := filepath.Join(work, "lib.sml")
	mainPath := filepath.Join(work, "main.sml")
	groupPath := filepath.Join(work, "prog.cm")
	writeFile(t, libPath, "structure Lib = struct fun triple n = 3 * n end\n")
	writeFile(t, mainPath, `val _ = print (Int.toString (Lib.triple 14) ^ "\n")`+"\n")
	writeFile(t, groupPath, "lib.sml\nmain.sml\n")
	store := filepath.Join(work, "store")

	t.Run("report-json-schema", func(t *testing.T) {
		// The machine-readable report's shape is a compatibility
		// contract: additions require updating the golden file.
		stdout, _, err := runToolSplit(t, tools["irm"],
			"build", groupPath, "-store", filepath.Join(work, "schema-store"), "-report", "json")
		if err != nil {
			t.Fatalf("irm build -report json: %v\n%s", err, stdout)
		}
		var report map[string]any
		if err := json.Unmarshal([]byte(lastLine(stdout)), &report); err != nil {
			t.Fatalf("last stdout line is not JSON: %v\n%q", err, lastLine(stdout))
		}
		got := strings.Join(keyPaths(report), "\n") + "\n"
		goldenPath := filepath.Join("testdata", "report_schema.golden")
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("reading golden: %v (regenerate with the paths below)\n%s", err, got)
		}
		if got != string(want) {
			t.Errorf("report schema drifted from %s.\ngot:\n%s\nwant:\n%s", goldenPath, got, want)
		}
	})

	t.Run("trace-valid", func(t *testing.T) {
		tracePath := filepath.Join(work, "trace.json")
		stdout, _, err := runToolSplit(t, tools["irm"],
			"build", groupPath, "-store", filepath.Join(work, "trace-store"), "-trace", tracePath)
		if err != nil {
			t.Fatalf("irm build -trace: %v\n%s", err, stdout)
		}
		data, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		var tf struct {
			TraceEvents     []traceEvent `json:"traceEvents"`
			DisplayTimeUnit string       `json:"displayTimeUnit"`
		}
		if err := json.Unmarshal(data, &tf); err != nil {
			t.Fatalf("trace is not valid JSON: %v", err)
		}
		if tf.DisplayTimeUnit == "" || len(tf.TraceEvents) == 0 {
			t.Fatalf("trace envelope incomplete: unit=%q events=%d",
				tf.DisplayTimeUnit, len(tf.TraceEvents))
		}

		var build *traceEvent
		units := map[string]traceEvent{}
		for i, ev := range tf.TraceEvents {
			if ev.Ph != "X" {
				t.Errorf("event %q: ph=%q, want complete event \"X\"", ev.Name, ev.Ph)
			}
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("event %q: negative ts/dur (%v/%v)", ev.Name, ev.Ts, ev.Dur)
			}
			switch ev.Cat {
			case "build":
				build = &tf.TraceEvents[i]
			case "unit":
				units[ev.Name] = ev
			}
		}
		if build == nil {
			t.Fatal("no build-category root event")
		}
		// Spans nest: every event sits inside the build root (1ns of
		// float slack), and unit phases sit inside their unit.
		const eps = 1e-3
		contains := func(outer, inner traceEvent) bool {
			return inner.Ts >= outer.Ts-eps && inner.Ts+inner.Dur <= outer.Ts+outer.Dur+eps
		}
		for _, ev := range tf.TraceEvents {
			if !contains(*build, ev) {
				t.Errorf("event %q [%v,+%v] escapes the build span [%v,+%v]",
					ev.Name, ev.Ts, ev.Dur, build.Ts, build.Dur)
			}
		}
		// Both units compiled cold: each unit span must have a compile
		// phase with a strictly positive duration (sub-µs work must not
		// round to zero).
		for _, want := range []string{"lib.sml", "main.sml"} {
			u, ok := units[want]
			if !ok {
				t.Errorf("no unit span for %s", want)
				continue
			}
			var compiled bool
			for _, ev := range tf.TraceEvents {
				if ev.Cat == "phase" && ev.Name == "compile" && contains(u, ev) {
					compiled = true
					if ev.Dur <= 0 {
						t.Errorf("%s: compile phase has zero duration", want)
					}
				}
			}
			if !compiled {
				t.Errorf("%s: no compile phase inside its unit span", want)
			}
		}
	})

	t.Run("explain-one-record-per-unit", func(t *testing.T) {
		// The edit matrix of the paper's evaluation: cold, null,
		// implementation-only edit (cutoff), interface edit (cascade).
		// Every build must explain every unit exactly once.
		scenarios := []struct {
			name    string
			lib     string
			reasons map[string]string // unit -> expected reason
		}{
			{"cold", "", map[string]string{"lib.sml": "cold", "main.sml": "cold"}},
			{"null", "", map[string]string{"lib.sml": "cached", "main.sml": "cached"}},
			{"impl-edit", "(* tweak *) structure Lib = struct fun triple n = 3 * n end\n",
				map[string]string{"lib.sml": "source-changed", "main.sml": "cached"}},
			{"interface-edit", "structure Lib = struct fun triple n = 3 * n val k = 7 end\n",
				map[string]string{"lib.sml": "source-changed", "main.sml": "dep-interface-changed"}},
		}
		for _, sc := range scenarios {
			if sc.lib != "" {
				writeFile(t, libPath, sc.lib)
			}
			_, stderr, err := runToolSplit(t, tools["irm"],
				"build", groupPath, "-store", store, "-explain")
			if err != nil {
				t.Fatalf("%s: irm build -explain: %v\n%s", sc.name, err, stderr)
			}
			seen := map[string]string{}
			for _, line := range strings.Split(strings.TrimSpace(stderr), "\n") {
				var rec struct {
					Unit   string `json:"unit"`
					Reason string `json:"reason"`
				}
				if err := json.Unmarshal([]byte(line), &rec); err != nil {
					t.Fatalf("%s: explain line is not JSON: %v\n%q", sc.name, err, line)
				}
				if _, dup := seen[rec.Unit]; dup {
					t.Errorf("%s: duplicate explain record for %s", sc.name, rec.Unit)
				}
				seen[rec.Unit] = rec.Reason
			}
			if len(seen) != len(sc.reasons) {
				t.Errorf("%s: %d explain records, want %d", sc.name, len(seen), len(sc.reasons))
			}
			for unit, want := range sc.reasons {
				if seen[unit] != want {
					t.Errorf("%s: %s reason=%q, want %q", sc.name, unit, seen[unit], want)
				}
			}
		}
	})

	t.Run("bench", func(t *testing.T) {
		outPath := filepath.Join(work, "BENCH_irm.json")
		_, stderr, err := runToolSplit(t, tools["irm"],
			"bench", "-out", outPath, "-units", "6", "-lines", "8", "-j", "2")
		if err != nil {
			t.Fatalf("irm bench: %v\n%s", err, stderr)
		}
		data, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		type scenario struct {
			Name            string `json:"name"`
			WallNs          int64  `json:"wall_ns"`
			Allocs          uint64 `json:"allocs"`
			ExecNs          int64  `json:"exec_ns"`
			ExecParallelism int64  `json:"exec_parallelism"`
			Report          struct {
				Units    int `json:"units"`
				Compiled int `json:"compiled"`
				Loaded   int `json:"loaded"`
				Cutoffs  int `json:"cutoffs"`
			} `json:"report"`
		}
		var bf struct {
			Schema string `json:"schema"`
			Config struct {
				ExecEngine string `json:"exec_engine"`
			} `json:"config"`
			Provenance struct {
				GoVersion  string `json:"go_version"`
				GOMAXPROCS int    `json:"gomaxprocs"`
				OS         string `json:"os"`
				Arch       string `json:"arch"`
			} `json:"provenance"`
			Matrix []struct {
				Jobs      int        `json:"jobs"`
				Scenarios []scenario `json:"scenarios"`
			} `json:"matrix"`
			Speedup struct {
				Jobs         int     `json:"jobs"`
				ColdWallNsJ1 int64   `json:"cold_wall_ns_j1"`
				ColdWallNsJN int64   `json:"cold_wall_ns_jn"`
				ColdSpeedup  float64 `json:"cold_speedup"`
			} `json:"speedup"`
			WarmCache struct {
				Warm1WallNs int64   `json:"warm1_wall_ns"`
				Warm2WallNs int64   `json:"warm2_wall_ns"`
				Hits        int64   `json:"hits"`
				Misses      int64   `json:"misses"`
				HitRate     float64 `json:"hit_rate"`
				Speedup     float64 `json:"speedup"`
			} `json:"warm_cache"`
		}
		if err := json.Unmarshal(data, &bf); err != nil {
			t.Fatalf("bench output is not valid JSON: %v", err)
		}
		if bf.Schema != "irm-bench/5" {
			t.Errorf("bench schema %q", bf.Schema)
		}
		if bf.Config.ExecEngine != "closure" {
			t.Errorf("config exec_engine %q, want closure default", bf.Config.ExecEngine)
		}
		if p := bf.Provenance; p.GoVersion == "" || p.GOMAXPROCS < 1 || p.OS == "" || p.Arch == "" {
			t.Errorf("provenance incomplete: %+v", p)
		}
		if len(bf.Matrix) != 2 || bf.Matrix[0].Jobs != 1 || bf.Matrix[1].Jobs != 2 {
			t.Fatalf("bench matrix widths: %+v, want -j1 and -j2 runs", bf.Matrix)
		}
		if bf.Speedup.Jobs != 2 || bf.Speedup.ColdWallNsJ1 <= 0 ||
			bf.Speedup.ColdWallNsJN <= 0 || bf.Speedup.ColdSpeedup <= 0 {
			t.Errorf("speedup record incomplete: %+v", bf.Speedup)
		}
		// The warm-cache record: first null rebuild misses on all 6
		// units, second hits on all 6.
		if wc := bf.WarmCache; wc.Warm1WallNs <= 0 || wc.Warm2WallNs <= 0 ||
			wc.Hits != 6 || wc.Misses != 6 || wc.HitRate != 1 || wc.Speedup <= 0 {
			t.Errorf("warm-cache record incomplete: %+v", wc)
		}
		wantOrder := []string{"cold", "null", "impl-edit", "interface-edit"}
		for _, run := range bf.Matrix {
			if len(run.Scenarios) != len(wantOrder) {
				t.Fatalf("-j%d: %d scenarios, want %d", run.Jobs, len(run.Scenarios), len(wantOrder))
			}
			for i, sc := range run.Scenarios {
				if sc.Name != wantOrder[i] {
					t.Errorf("-j%d: scenario[%d]=%q, want %q", run.Jobs, i, sc.Name, wantOrder[i])
				}
				if sc.WallNs <= 0 {
					t.Errorf("-j%d %s: wall_ns=%d", run.Jobs, sc.Name, sc.WallNs)
				}
				if sc.Allocs == 0 {
					t.Errorf("-j%d %s: allocs=0, want a heap delta", run.Jobs, sc.Name)
				}
				if sc.ExecNs <= 0 {
					t.Errorf("-j%d %s: exec_ns=%d, want unit-execution time", run.Jobs, sc.Name, sc.ExecNs)
				}
				if sc.ExecParallelism < 1 || sc.ExecParallelism > int64(run.Jobs) {
					t.Errorf("-j%d %s: exec_parallelism=%d, want 1..%d",
						run.Jobs, sc.Name, sc.ExecParallelism, run.Jobs)
				}
				if sc.Report.Units != 6 {
					t.Errorf("-j%d %s: units=%d, want 6", run.Jobs, sc.Name, sc.Report.Units)
				}
			}
			// The edit matrix's counts are scheduler-width invariant:
			// the determinism contract, checked end-to-end.
			if c := run.Scenarios[0].Report; c.Compiled != 6 || c.Loaded != 0 {
				t.Errorf("-j%d cold: compiled=%d loaded=%d, want 6/0", run.Jobs, c.Compiled, c.Loaded)
			}
			if n := run.Scenarios[1].Report; n.Compiled != 0 || n.Loaded != 6 {
				t.Errorf("-j%d null: compiled=%d loaded=%d, want 0/6", run.Jobs, n.Compiled, n.Loaded)
			}
			if ie := run.Scenarios[2].Report; ie.Cutoffs < 1 || ie.Loaded == 0 {
				t.Errorf("-j%d impl-edit: cutoffs=%d loaded=%d, want a cutoff with reuse",
					run.Jobs, ie.Cutoffs, ie.Loaded)
			}
		}
	})
}
