// Differential fuzzing of the two execution engines (DESIGN.md §4j):
// on any source, the tree walker and the compiled-closure backend must
// print the same bytes, fail with the same error, and leave the same
// export values. Step budgets are the one sanctioned divergence — the
// engines count steps at different granularities — so budget-exceeded
// runs are skipped, not compared.
package repro

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/workload"
)

// execUnder compiles and executes src in a fresh session on the given
// engine, returning what an observer can distinguish: printed output,
// the rendered dynamic environment, and the error string ("" = none).
func execUnder(engine interp.Engine, src string) (stdout, exports, errStr string) {
	var out strings.Builder
	s, err := compiler.NewSessionWith(&out, engine)
	if err != nil {
		return "", "", "session: " + err.Error()
	}
	// Bound divergence. Kept small so the deepest budget-respecting
	// recursion stays far from the Go stack limit.
	s.Machine.MaxSteps = 200_000
	if _, err := s.Run("fuzz.sml", src); err != nil {
		return out.String(), "", err.Error()
	}
	pids := s.Dyn.Pids()
	lines := make([]string, 0, len(pids))
	for _, p := range pids {
		v, ok := s.Dyn.Lookup(p)
		if !ok {
			continue
		}
		lines = append(lines, p.String()+"="+interp.String(v))
	}
	sort.Strings(lines)
	return out.String(), strings.Join(lines, "\n"), ""
}

func FuzzExecTreeVsClosure(f *testing.F) {
	f.Add("val x = 1 + 2")
	f.Add("fun fib n = if n < 2 then n else fib (n-1) + fib (n-2)\nval r = fib 12")
	f.Add("val _ = print \"hello\\n\" val _ = print (Int.toString 42)")
	f.Add("exception Boom of int\nval r = (raise Boom 7) handle Boom n => n")
	f.Add("val xs = map (fn x => x * x) [1, 2, 3]")
	f.Add("val d = 1 div 0")
	f.Add("val v = (100000000000000000 * 100000) handle Overflow => 0")
	f.Add("fun loop n = loop (n + 1)\nval _ = loop 0")
	f.Add("datatype t = A | B of int\nfun show A = \"A\" | show (B n) = Int.toString n\nval s = show (B 3) ^ show A")
	for _, file := range workload.Generate(workload.Small()).Files {
		f.Add(file.Source)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tOut, tExp, tErr := execUnder(interp.EngineTree, src)
		cOut, cExp, cErr := execUnder(interp.EngineClosure, src)
		if strings.Contains(tErr, "step budget") || strings.Contains(cErr, "step budget") {
			t.Skip("step budget reached; step granularity is engine-specific")
		}
		if tErr != cErr {
			t.Fatalf("error mismatch:\ntree:    %q\nclosure: %q\nsource:\n%s", tErr, cErr, src)
		}
		if tOut != cOut {
			t.Fatalf("output mismatch:\ntree:    %q\nclosure: %q\nsource:\n%s", tOut, cOut, src)
		}
		if tExp != cExp {
			t.Fatalf("export mismatch:\ntree:\n%s\nclosure:\n%s\nsource:\n%s", tExp, cExp, src)
		}
	})
}
