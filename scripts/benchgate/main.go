// Command benchgate compares two `go test -bench` output files (base
// and head) and exits non-zero when any gated benchmark's ns/op
// regresses by more than a threshold. It is the stdlib-only gating
// half of the CI bench job: benchstat renders the human-readable
// comparison, benchgate decides pass/fail, so the gate works even
// where installing x/perf is impossible.
//
// Per benchmark name the minimum ns/op across repetitions is compared
// — the best observed run is the least noisy estimate of the code's
// floor, which is what a perf gate should police.
//
// Concurrency: a single-goroutine command-line tool.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// parseBench reads `go test -bench` output and returns, per benchmark
// name (with the -N GOMAXPROCS suffix stripped), the minimum ns/op
// observed across repetitions.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	best := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		// The ns/op value is the field preceding the "ns/op" token.
		var ns float64
		found := false
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				ns, err = strconv.ParseFloat(fields[i-1], 64)
				found = err == nil
				break
			}
		}
		if !found {
			continue
		}
		if old, ok := best[name]; !ok || ns < old {
			best[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return best, nil
}

func main() {
	threshold := flag.Float64("threshold", 10, "max allowed ns/op regression, percent")
	match := flag.String("match", `Pipeline(Hash|Pickle|Rehydrate)|Exec(Cold|Warm)|ApplyHot`,
		"regexp selecting which benchmarks gate the build")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [flags] base.txt head.txt")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	base, err := parseBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	head, err := parseBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	gated, failed := 0, 0
	for _, n := range names {
		if !re.MatchString(n) {
			continue
		}
		hd, ok := head[n]
		if !ok {
			fmt.Printf("benchgate: %-28s missing from head (skipped)\n", n)
			continue
		}
		gated++
		bs := base[n]
		delta := (hd - bs) / bs * 100
		verdict := "ok"
		if delta > *threshold {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("benchgate: %-28s base %10.0f ns/op  head %10.0f ns/op  %+6.1f%%  %s\n",
			n, bs, hd, delta, verdict)
	}
	if gated == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark matched %q in %s\n", *match, flag.Arg(0))
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d/%d gated benchmarks regressed more than %.0f%%\n",
			failed, gated, *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d gated benchmarks within %.0f%%\n", gated, *threshold)
}
