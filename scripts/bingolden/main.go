// Command bingolden regenerates testdata/binfile_golden.json: the
// intrinsic pid and bin-file content hash of every unit of a fixed
// corpus of generated projects. The golden file pins the bin format
// and the pid computation: any change to pickling, hashing, or stamp
// assignment that alters a single byte of any bin file (or any pid)
// shows up as a golden mismatch in TestBinfileGolden.
//
// Concurrency: a single-goroutine command-line tool.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/pid"
	"repro/internal/workload"
)

// Unit is one golden record.
type Unit struct {
	Project string `json:"project"`
	Name    string `json:"name"`
	StatPid string `json:"stat_pid"`
	BinHash string `json:"bin_hash"`
	BinLen  int    `json:"bin_len"`
}

// Collect builds every corpus project on a fresh manager and records
// each unit's pid and bin hash.
func Collect() ([]Unit, error) {
	var units []Unit
	names := make([]string, 0)
	corpus := workload.GoldenCorpus()
	for n := range corpus {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, pname := range names {
		p := corpus[pname]
		store := core.NewMemStore()
		m := core.NewManager()
		m.Store = store
		if _, err := m.Build(p.Files); err != nil {
			return nil, fmt.Errorf("%s: %v", pname, err)
		}
		for _, f := range p.Files {
			e, err := store.Load(f.Name)
			if err != nil || e == nil {
				return nil, fmt.Errorf("%s/%s: missing entry (%v)", pname, f.Name, err)
			}
			units = append(units, Unit{
				Project: pname,
				Name:    f.Name,
				StatPid: e.StatPid.String(),
				BinHash: pid.HashBytes(e.Bin).String(),
				BinLen:  len(e.Bin),
			})
		}
	}
	return units, nil
}

func main() {
	out := "testdata/binfile_golden.json"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}
	units, err := Collect()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bingolden:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(units, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bingolden:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bingolden:", err)
		os.Exit(1)
	}
	fmt.Printf("bingolden: wrote %d units to %s\n", len(units), out)
}
