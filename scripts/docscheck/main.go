// Command docscheck is CI's docs-health gate. Three checks:
//
//   - Package docs: every package under internal/ must have a package
//     doc comment, and that comment must state the package's
//     concurrency contract (a "Concurrency:" paragraph) — the
//     discipline ARCHITECTURE.md §5 describes.
//   - Counter registry: the DESIGN.md §4d counter table must match
//     the string-literal counter names non-test code actually passes
//     to Add/Count, in both directions. A counter the code emits but
//     the table omits is undocumented telemetry; a table entry no
//     code emits is documentation rot. Either fails CI.
//   - Protocol registry: the PROTOCOL.md §2 endpoint table must match
//     the routes the daemon mux actually registers (HandleFunc/Handle
//     string literals in internal/daemon and internal/obsserve), in
//     both directions, including the verb: "GET /path" registrations
//     must be documented as GET, method-less ones as ANY.
//
// Exits non-zero listing every failure.
//
// Concurrency: a single-goroutine command-line tool.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	root := "internal"
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dirs, err := os.ReadDir(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	var failed []string
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		dir := filepath.Join(root, d.Name())
		doc, err := packageDoc(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %s: %v\n", dir, err)
			os.Exit(1)
		}
		switch {
		case doc == "":
			failed = append(failed, dir+": no package doc comment")
		case !strings.Contains(doc, "Concurrency:"):
			failed = append(failed, dir+": package doc states no concurrency contract (want a \"Concurrency:\" paragraph)")
		}
	}
	failed = append(failed, checkCounterRegistry(root)...)
	failed = append(failed, checkProtocolRegistry(root)...)
	if len(failed) > 0 {
		for _, f := range failed {
			fmt.Fprintln(os.Stderr, "docscheck:", f)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d finding(s) failing docs health\n", len(failed))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d packages healthy, counter and protocol registries in sync\n", len(dirs))
}

// counterPat is the shape of a registry counter name: at least one
// dot-separated namespace, lower-case (matching the DESIGN.md §4d
// convention). Filters out ordinary strings passed to Add-named
// methods elsewhere.
var counterPat = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_.]+)+$`)

// checkCounterRegistry diffs the DESIGN.md §4d table against the
// counters emitted by non-test code under root (internal/) and cmd/.
func checkCounterRegistry(root string) []string {
	documented, err := tableCounters("DESIGN.md")
	if err != nil {
		return []string{fmt.Sprintf("counter registry: %v", err)}
	}
	if len(documented) == 0 {
		return []string{"counter registry: no counter table found in DESIGN.md §4d"}
	}
	emitted, err := emittedCounters(root, "cmd")
	if err != nil {
		return []string{fmt.Sprintf("counter registry: %v", err)}
	}
	var failed []string
	for name, where := range emitted {
		if !documented[name] {
			failed = append(failed, fmt.Sprintf(
				"counter registry: %s is emitted (%s) but missing from the DESIGN.md §4d table", name, where))
		}
	}
	for name := range documented {
		if _, ok := emitted[name]; !ok {
			failed = append(failed, fmt.Sprintf(
				"counter registry: %s is in the DESIGN.md §4d table but no non-test code emits it", name))
		}
	}
	sort.Strings(failed)
	return failed
}

// tableRow matches a registry table line: | `prefix.` | `c1 c2 ...` ...
var tableRow = regexp.MustCompile("^\\| `([a-z_.]+)` \\| `([a-z0-9_. ]+)`")

// tableCounters parses the §4d table into the set of fully qualified
// counter names it documents.
func tableCounters(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		m := tableRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		prefix := m[1]
		for _, c := range strings.Fields(m[2]) {
			out[prefix+c] = true
		}
	}
	return out, nil
}

// emittedCounters walks every non-test Go file under the roots and
// collects string literals that look like counter names passed to a
// call whose method is named Add or Count. Returns name -> one
// emitting position (for the error message).
func emittedCounters(roots ...string) (map[string]string, error) {
	out := map[string]string{}
	fset := token.NewFileSet()
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return fmt.Errorf("%s: %v", path, err)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call)
				if name != "Add" && name != "Count" {
					return true
				}
				for _, arg := range call.Args {
					lit, ok := arg.(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					s, err := strconv.Unquote(lit.Value)
					if err != nil || !counterPat.MatchString(s) {
						continue
					}
					if _, seen := out[s]; !seen {
						out[s] = fset.Position(lit.Pos()).String()
					}
				}
				return true
			})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// protocolRow matches a PROTOCOL.md §2 endpoint table line:
// | `VERB` | `/path` | ...
var protocolRow = regexp.MustCompile("^\\| `(GET|POST|PUT|DELETE|ANY)` \\| `(/[^`]*)` \\|")

// routePat matches the mux patterns the daemon registers: an optional
// method prefix and a rooted path.
var routePat = regexp.MustCompile(`^(?:(GET|POST|PUT|DELETE) )?(/.*)$`)

// checkProtocolRegistry diffs the PROTOCOL.md endpoint table against
// the routes registered on the daemon mux (internal/daemon) and the
// telemetry mux it falls through to (internal/obsserve). The bare "/"
// fallback mount is wiring, not an endpoint, and is skipped.
func checkProtocolRegistry(root string) []string {
	documented, err := protocolTable("PROTOCOL.md")
	if err != nil {
		return []string{fmt.Sprintf("protocol registry: %v", err)}
	}
	if len(documented) == 0 {
		return []string{"protocol registry: no endpoint table found in PROTOCOL.md §2"}
	}
	registered, err := registeredRoutes(
		filepath.Join(root, "daemon"), filepath.Join(root, "obsserve"))
	if err != nil {
		return []string{fmt.Sprintf("protocol registry: %v", err)}
	}
	var failed []string
	for route, where := range registered {
		if !documented[route] {
			failed = append(failed, fmt.Sprintf(
				"protocol registry: %s is registered (%s) but missing from the PROTOCOL.md §2 table", route, where))
		}
	}
	for route := range documented {
		if _, ok := registered[route]; !ok {
			failed = append(failed, fmt.Sprintf(
				"protocol registry: %s is in the PROTOCOL.md §2 table but no mux registers it", route))
		}
	}
	sort.Strings(failed)
	return failed
}

// protocolTable parses the PROTOCOL.md endpoint table into a set of
// "VERB /path" route keys.
func protocolTable(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		m := protocolRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		out[m[1]+" "+m[2]] = true
	}
	return out, nil
}

// registeredRoutes walks the non-test Go files of the given package
// dirs and collects the mux patterns passed as the first string
// literal of HandleFunc/Handle calls, as "VERB /path" keys (ANY for a
// method-less registration). Returns route -> one registering
// position.
func registeredRoutes(dirs ...string) (map[string]string, error) {
	out := map[string]string{}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return fmt.Errorf("%s: %v", path, err)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call)
				if (name != "HandleFunc" && name != "Handle") || len(call.Args) == 0 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				m := routePat.FindStringSubmatch(s)
				if m == nil || m[2] == "/" { // skip the fallback mount
					return true
				}
				verb := m[1]
				if verb == "" {
					verb = "ANY"
				}
				route := verb + " " + m[2]
				if _, seen := out[route]; !seen {
					out[route] = fset.Position(lit.Pos()).String()
				}
				return true
			})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// calleeName returns the called function or method's bare name.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return ""
}

// packageDoc returns the concatenated package doc comments of the
// non-test Go files in dir ("" if none).
func packageDoc(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	fset := token.NewFileSet()
	var docs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return "", err
		}
		if f.Doc != nil {
			docs = append(docs, f.Doc.Text())
		}
	}
	return strings.Join(docs, "\n"), nil
}
