// Command docscheck is CI's docs-health gate: every package under
// internal/ must have a package doc comment, and that comment must
// state the package's concurrency contract (a "Concurrency:"
// paragraph) — the discipline ARCHITECTURE.md §5 describes. Exits
// non-zero listing every package that fails.
//
// Concurrency: a single-goroutine command-line tool.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root := "internal"
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dirs, err := os.ReadDir(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	var failed []string
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		dir := filepath.Join(root, d.Name())
		doc, err := packageDoc(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %s: %v\n", dir, err)
			os.Exit(1)
		}
		switch {
		case doc == "":
			failed = append(failed, dir+": no package doc comment")
		case !strings.Contains(doc, "Concurrency:"):
			failed = append(failed, dir+": package doc states no concurrency contract (want a \"Concurrency:\" paragraph)")
		}
	}
	if len(failed) > 0 {
		for _, f := range failed {
			fmt.Fprintln(os.Stderr, "docscheck:", f)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d package(s) failing docs health\n", len(failed))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d packages healthy\n", len(dirs))
}

// packageDoc returns the concatenated package doc comments of the
// non-test Go files in dir ("" if none).
func packageDoc(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	fset := token.NewFileSet()
	var docs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return "", err
		}
		if f.Doc != nil {
			docs = append(docs, f.Doc.Text())
		}
	}
	return strings.Join(docs, "\n"), nil
}
