// Command promcheck validates a Prometheus text-exposition scrape on
// stdin: every line must be a HELP/TYPE comment or a well-formed
// sample, every sample's metric name must have been announced by a
// preceding HELP and TYPE, values must parse as floats, and no metric
// may sample twice. CI's serve-smoke job pipes `curl /metrics` through
// it so a malformed exposition (which a real Prometheus server would
// drop silently, per-target) fails the build loudly instead.
//
// Usage: curl -s localhost:PORT/metrics | promcheck
//
// With -require name (repeatable via comma list), the named metrics
// must be present — the smoke test pins the families it cares about.
//
// Concurrency: a single-goroutine command-line tool.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

var (
	nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)( [0-9]+)?$`)
)

func main() {
	require := flag.String("require", "", "comma-separated metric names that must be present")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	announcedHelp := map[string]bool{}
	announcedType := map[string]bool{}
	seen := map[string]int{}
	lineNo := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "promcheck: line %d: %s\n", lineNo, fmt.Sprintf(format, args...))
		os.Exit(1)
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 3 && (f[1] == "HELP" || f[1] == "TYPE") {
				if !nameRe.MatchString(f[2]) {
					fail("bad metric name in %s: %q", f[1], f[2])
				}
				if f[1] == "HELP" {
					if announcedHelp[f[2]] {
						fail("duplicate HELP for %s", f[2])
					}
					announcedHelp[f[2]] = true
				} else {
					if len(f) < 4 {
						fail("TYPE without a type: %q", line)
					}
					switch f[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						fail("unknown TYPE %q for %s", f[3], f[2])
					}
					announcedType[f[2]] = true
				}
				continue
			}
			continue // free-form comment: legal, ignored
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			fail("not a valid sample: %q", line)
		}
		name := m[1]
		if !announcedHelp[name] || !announcedType[name] {
			fail("sample %s not announced by HELP and TYPE", name)
		}
		if v := m[3]; v != "NaN" && v != "+Inf" && v != "-Inf" {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				fail("bad value %q for %s", v, name)
			}
		}
		key := name + m[2] // name + labels: a series may sample only once
		seen[key]++
		if seen[key] > 1 {
			fail("duplicate sample for %s", key)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	var missing []string
	for _, want := range strings.Split(*require, ",") {
		if want = strings.TrimSpace(want); want != "" && seen[want] == 0 {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "promcheck: required metrics missing: %s\n", strings.Join(missing, ", "))
		os.Exit(1)
	}
	fmt.Printf("promcheck: %d series valid\n", len(seen))
}
