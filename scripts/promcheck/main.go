// Command promcheck validates a Prometheus text-exposition scrape on
// stdin: every line must be a HELP/TYPE comment or a well-formed
// sample, every sample's metric name must have been announced by a
// preceding HELP and TYPE, values must parse as floats, and no series
// may sample twice. Histogram families get the full treatment: their
// `_bucket`/`_sum`/`_count` samples must belong to an announced
// histogram, every `_bucket` must carry an `le` label, the `le` bounds
// must be strictly increasing and end at `+Inf`, cumulative bucket
// counts must be non-decreasing, and the `+Inf` bucket must equal
// `_count`. CI's smoke jobs pipe `curl /metrics` through it so a
// malformed exposition (which a real Prometheus server would drop
// silently, per-target) fails the build loudly instead.
//
// Usage: curl -s localhost:PORT/metrics | promcheck
//
// With -require name (repeatable via comma list), the named metrics
// must be present — the smoke test pins the families it cares about.
// Names are matched without labels, so requiring
// irm_watch_latency_seconds_bucket asserts the histogram exported at
// least one bucket series.
//
// Concurrency: a single-goroutine command-line tool.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
)

var (
	nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)( [0-9]+)?$`)
	leRe     = regexp.MustCompile(`le="([^"]*)"`)
)

// histFamily accumulates one histogram's samples for the end-of-scrape
// structural checks.
type histFamily struct {
	les      []float64 // bucket bounds, in exposition order
	counts   []float64 // cumulative counts, in exposition order
	sum      *float64
	count    *float64
	anySeen  bool
	hasPlain bool // a labelless sample under the bare family name
}

func main() {
	require := flag.String("require", "", "comma-separated metric names that must be present")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	announcedHelp := map[string]bool{}
	announcedType := map[string]string{}
	hists := map[string]*histFamily{}
	seen := map[string]int{}
	present := map[string]bool{} // sample names without labels
	lineNo := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "promcheck: line %d: %s\n", lineNo, fmt.Sprintf(format, args...))
		os.Exit(1)
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 3 && (f[1] == "HELP" || f[1] == "TYPE") {
				if !nameRe.MatchString(f[2]) {
					fail("bad metric name in %s: %q", f[1], f[2])
				}
				if f[1] == "HELP" {
					if announcedHelp[f[2]] {
						fail("duplicate HELP for %s", f[2])
					}
					announcedHelp[f[2]] = true
				} else {
					if len(f) < 4 {
						fail("TYPE without a type: %q", line)
					}
					switch f[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						fail("unknown TYPE %q for %s", f[3], f[2])
					}
					announcedType[f[2]] = f[3]
					if f[3] == "histogram" {
						hists[f[2]] = &histFamily{}
					}
				}
				continue
			}
			continue // free-form comment: legal, ignored
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			fail("not a valid sample: %q", line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		var val float64
		switch valStr {
		case "NaN":
			val = math.NaN()
		case "+Inf":
			val = math.Inf(1)
		case "-Inf":
			val = math.Inf(-1)
		default:
			var err error
			if val, err = strconv.ParseFloat(valStr, 64); err != nil {
				fail("bad value %q for %s", valStr, name)
			}
		}
		// A histogram announces one family name; its samples arrive as
		// name_bucket / name_sum / name_count.
		family, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name && hists[base] != nil {
				family, suffix = base, s
				break
			}
		}
		if !announcedHelp[family] || announcedType[family] == "" {
			fail("sample %s not announced by HELP and TYPE", name)
		}
		if h := hists[family]; h != nil {
			h.anySeen = true
			switch suffix {
			case "_bucket":
				lm := leRe.FindStringSubmatch(labels)
				if lm == nil {
					fail("histogram bucket %s without an le label", name)
				}
				le := math.Inf(1)
				if lm[1] != "+Inf" {
					var err error
					if le, err = strconv.ParseFloat(lm[1], 64); err != nil {
						fail("bad le %q on %s", lm[1], name)
					}
				}
				h.les = append(h.les, le)
				h.counts = append(h.counts, val)
			case "_sum":
				h.sum = &val
			case "_count":
				h.count = &val
			default:
				h.hasPlain = true
			}
		}
		key := name + labels // name + labels: a series may sample only once
		seen[key]++
		if seen[key] > 1 {
			fail("duplicate sample for %s", key)
		}
		present[name] = true
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	failf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "promcheck: %s\n", fmt.Sprintf(format, args...))
		os.Exit(1)
	}
	for name, h := range hists {
		if !h.anySeen {
			continue // announced but empty: legal
		}
		if h.hasPlain {
			failf("histogram %s has a bare sample; expected only _bucket/_sum/_count", name)
		}
		if len(h.les) == 0 {
			failf("histogram %s has no _bucket series", name)
		}
		if h.sum == nil || h.count == nil {
			failf("histogram %s is missing _sum or _count", name)
		}
		for i := 1; i < len(h.les); i++ {
			if !(h.les[i] > h.les[i-1]) {
				failf("histogram %s: le bounds not strictly increasing (%g after %g)",
					name, h.les[i], h.les[i-1])
			}
			if h.counts[i] < h.counts[i-1] {
				failf("histogram %s: cumulative bucket counts decrease at le=%g",
					name, h.les[i])
			}
		}
		if !math.IsInf(h.les[len(h.les)-1], 1) {
			failf("histogram %s: last bucket is not le=\"+Inf\"", name)
		}
		if h.counts[len(h.counts)-1] != *h.count {
			failf("histogram %s: +Inf bucket (%g) != _count (%g)",
				name, h.counts[len(h.counts)-1], *h.count)
		}
	}
	var missing []string
	for _, want := range strings.Split(*require, ",") {
		if want = strings.TrimSpace(want); want != "" && !present[want] {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "promcheck: required metrics missing: %s\n", strings.Join(missing, ", "))
		os.Exit(1)
	}
	fmt.Printf("promcheck: %d series valid\n", len(seen))
}
