package repro

// End-to-end tests for the daemon: a real `irm daemon` process on a
// real unix socket, concurrent `irm build` clients dispatching to it,
// smlc compiling through /v1/compile, SIGTERM drain leaving the store
// byte-identical to a daemon-less build, and the fallback paths when
// no daemon answers.

import (
	"bufio"
	"bytes"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
)

// startDaemonCmd launches `irm daemon`, waits for the socket
// announcement, and returns the socket path, the command (for
// signalling), and a channel that yields all stderr once it exits.
func startDaemonCmd(t *testing.T, bin string, args ...string) (string, *exec.Cmd, chan string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"daemon"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sockCh := make(chan string, 1)
	logCh := make(chan string, 1)
	go func() {
		var log strings.Builder
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			log.WriteString(line + "\n")
			if rest, ok := strings.CutPrefix(line, "irm: daemon listening on "); ok {
				sockCh <- strings.TrimSpace(rest)
			}
		}
		logCh <- log.String()
	}()
	select {
	case sock := <-sockCh:
		return sock, cmd, logCh
	case <-time.After(10 * time.Second):
		t.Fatal("irm daemon never announced its socket")
		return "", nil, nil
	}
}

func writeDaemonProject(t *testing.T, dir string) string {
	t.Helper()
	writeFile(t, filepath.Join(dir, "lib.sml"), "structure Lib = struct fun triple n = 3 * n end\n")
	writeFile(t, filepath.Join(dir, "main.sml"), `val _ = print (Int.toString (Lib.triple 14) ^ "\n")`+"\n")
	group := filepath.Join(dir, "group.cm")
	writeFile(t, group, "lib.sml\nmain.sml\n")
	return group
}

func TestDaemonCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "irm")
	work := t.TempDir()
	group := writeDaemonProject(t, work)
	store := filepath.Join(work, "store")

	socket, cmd, logCh := startDaemonCmd(t, tools["irm"], "-store", store, "-v")
	if want := filepath.Join(work, ".irm", "daemon.sock"); socket != want {
		t.Fatalf("daemon socket %s, want the store-derived %s", socket, want)
	}

	// Three concurrent clients; `irm build -store` derives the same
	// socket and dispatches. Every one must see the program output and
	// the summary line, whoever led the build.
	outs := make([]string, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = runTool(t, tools["irm"], "", "build", group, "-store", store)
		}(i)
	}
	wg.Wait()
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("client %d: %v\n%s", i, errs[i], outs[i])
		}
		if !strings.Contains(outs[i], "42") {
			t.Fatalf("client %d: program output missing:\n%s", i, outs[i])
		}
		if !strings.Contains(outs[i], "2 units") {
			t.Fatalf("client %d: summary missing:\n%s", i, outs[i])
		}
	}

	// Status over the unix socket: all three requests were served by
	// the daemon, and every request either led a build or coalesced.
	client := daemon.NewClient(socket)
	st, err := client.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 {
		t.Fatalf("status.requests = %d, want 3 (clients did not dispatch?)", st.Requests)
	}
	if st.Builds+st.Coalesced != 3 || st.Builds < 1 {
		t.Fatalf("status = %+v: builds+coalesced != requests", st)
	}

	// -explain through the daemon: decision records arrive on stderr
	// as JSONL (a warm build, so every unit reports loaded).
	out, err := runTool(t, tools["irm"], "", "build", group, "-store", store, "-explain")
	if err != nil {
		t.Fatalf("explain build: %v\n%s", err, out)
	}
	if strings.Count(out, `"action":"loaded"`) != 2 {
		t.Fatalf("expected 2 loaded explain records:\n%s", out)
	}

	// SIGTERM: graceful drain, socket removed, clean exit.
	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
	log := <-logCh
	if !strings.Contains(log, "irm: daemon draining") || !strings.Contains(log, "irm: daemon drained") {
		t.Fatalf("daemon log missing drain announcements:\n%s", log)
	}
	if _, err := os.Stat(socket); !os.IsNotExist(err) {
		t.Fatalf("socket %s not removed on drain (err=%v)", socket, err)
	}

	// The drained store is byte-identical to a daemon-less build of
	// the same group into a fresh store.
	work2 := t.TempDir()
	store2 := filepath.Join(work2, "store2")
	if out, err := runTool(t, tools["irm"], "", "build", group,
		"-store", store2, "-daemon", "off", "-j", "1"); err != nil {
		t.Fatalf("cold build: %v\n%s", err, out)
	}
	compareStoreDirs(t, store, store2)
}

// compareStoreDirs asserts two stores hold the same entries with the
// same bytes, ignoring the advisory lockfile.
func compareStoreDirs(t *testing.T, a, b string) {
	t.Helper()
	read := func(dir string) map[string][]byte {
		out := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || e.Name() == ".irm.lock" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = data
		}
		return out
	}
	got, want := read(a), read(b)
	if len(got) != len(want) {
		t.Fatalf("store %s has %d entries, %s has %d", a, len(got), b, len(want))
	}
	for name, data := range want {
		if !bytes.Equal(got[name], data) {
			t.Fatalf("store entry %s differs between daemon and daemon-less build", name)
		}
	}
}

// TestDaemonFallback: with no daemon, -daemon auto builds in-process
// and -daemon require refuses.
func TestDaemonFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "irm")
	work := t.TempDir()
	group := writeDaemonProject(t, work)
	store := filepath.Join(work, "store")

	out, err := runTool(t, tools["irm"], "", "build", group, "-store", store)
	if err != nil {
		t.Fatalf("fallback build: %v\n%s", err, out)
	}
	if !strings.Contains(out, "42") {
		t.Fatalf("fallback build output:\n%s", out)
	}

	out, err = runTool(t, tools["irm"], "", "build", group, "-store", store, "-daemon", "require")
	if err == nil {
		t.Fatalf("-daemon require succeeded with no daemon:\n%s", out)
	}
	if !strings.Contains(out, "no live daemon") {
		t.Fatalf("-daemon require error message:\n%s", out)
	}
}

// TestDaemonClientDrainExits: POST /v1/drain must finish the shutdown
// the same way SIGTERM does — the daemon process exits 0, the socket
// file is removed, and the store lock is released, so the next build
// can take the store (PROTOCOL.md §8).
func TestDaemonClientDrainExits(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "irm")
	work := t.TempDir()
	group := writeDaemonProject(t, work)
	store := filepath.Join(work, "store")

	socket, cmd, logCh := startDaemonCmd(t, tools["irm"], "-store", store)
	if err := daemon.NewClient(socket).Drain(); err != nil {
		t.Fatalf("drain request: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after client drain: %v", err)
	}
	log := <-logCh
	if !strings.Contains(log, "irm: daemon drained") {
		t.Fatalf("daemon log missing drained announcement:\n%s", log)
	}
	if _, err := os.Stat(socket); !os.IsNotExist(err) {
		t.Fatalf("socket %s not removed after client drain (err=%v)", socket, err)
	}
	// The store lock is free again: an in-process build must succeed
	// rather than timing out on a still-held lock.
	out, err := runTool(t, tools["irm"], "", "build", group, "-store", store)
	if err != nil {
		t.Fatalf("post-drain build: %v\n%s", err, out)
	}
	if !strings.Contains(out, "42") {
		t.Fatalf("post-drain build output:\n%s", out)
	}
}

// TestDaemonBackpressureFallback: a daemon that answers the probe but
// rejects work with a backpressure code (here: 503 draining) must not
// fail an auto-mode build — irm build and smlc run the work in-process
// (PROTOCOL.md §9); only -daemon require treats backpressure as fatal.
func TestDaemonBackpressureFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "irm", "smlc")
	work := t.TempDir()
	group := writeDaemonProject(t, work)
	store := filepath.Join(work, "store")

	// An in-test daemon, fully drained: GET /v1/status answers 200 (so
	// the probe succeeds) while every build and compile gets 503
	// draining. Its store stays untouched, so no lock is needed.
	dstore, err := core.NewDirStore(filepath.Join(work, "daemon-store"))
	if err != nil {
		t.Fatal(err)
	}
	srv := daemon.New(daemon.Options{Store: dstore, StoreDir: dstore.Dir})
	srv.Start()
	srv.Drain()
	socket := filepath.Join(work, "drained.sock")
	ln, err := net.Listen("unix", socket)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go http.Serve(ln, srv.Handler())

	out, err := runTool(t, tools["irm"], "", "build", group, "-store", store, "-daemon", socket)
	if err != nil {
		t.Fatalf("auto-mode build did not fall back on 503 draining: %v\n%s", err, out)
	}
	if !strings.Contains(out, "42") || !strings.Contains(out, "2 units") {
		t.Fatalf("fallback build output:\n%s", out)
	}

	cmd := exec.Command(tools["irm"], "build", group, "-store", store, "-daemon", "require")
	cmd.Env = append(os.Environ(), daemon.SocketEnv+"="+socket)
	reqOut, reqErr := cmd.CombinedOutput()
	if reqErr == nil {
		t.Fatalf("-daemon require succeeded against a draining daemon:\n%s", reqOut)
	}
	if !strings.Contains(string(reqOut), "draining") {
		t.Fatalf("-daemon require error message:\n%s", reqOut)
	}

	// smlc takes the same fallback: the compile runs in-process and
	// still writes its bin files.
	outDir := filepath.Join(work, "bins")
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		t.Fatal(err)
	}
	smlc := exec.Command(tools["smlc"], "-d", outDir, filepath.Join(work, "lib.sml"))
	smlc.Env = append(os.Environ(), daemon.SocketEnv+"="+socket)
	smlcOut, smlcErr := smlc.CombinedOutput()
	if smlcErr != nil {
		t.Fatalf("smlc did not fall back on 503 draining: %v\n%s", smlcErr, smlcOut)
	}
	if _, err := os.Stat(filepath.Join(outDir, "lib.bin")); err != nil {
		t.Fatalf("smlc fallback wrote no bin file: %v", err)
	}
}

// TestSmlcViaDaemon: smlc dispatching over $IRM_DAEMON_SOCKET writes
// bin files byte-identical to an in-process run, with the same stdout.
func TestSmlcViaDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "irm", "smlc")
	work := t.TempDir()
	writeFile(t, filepath.Join(work, "lib.sml"), "structure Lib = struct val n = 7 end\n")
	writeFile(t, filepath.Join(work, "use.sml"), "structure Use = struct val m = Lib.n * 6 end\n")
	store := filepath.Join(work, "store")

	socket, _, _ := startDaemonCmd(t, tools["irm"], "-store", store)

	viaDaemon := filepath.Join(work, "out-daemon")
	local := filepath.Join(work, "out-local")
	for _, dir := range []string{viaDaemon, local} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}

	cmd := exec.Command(tools["smlc"], "-d", viaDaemon,
		filepath.Join(work, "lib.sml"), filepath.Join(work, "use.sml"))
	cmd.Env = append(os.Environ(), daemon.SocketEnv+"="+socket)
	daemonOut, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("smlc via daemon: %v\n%s", err, daemonOut)
	}
	localOut, err := runTool(t, tools["smlc"], "", "-d", local, "-daemon", "off",
		filepath.Join(work, "lib.sml"), filepath.Join(work, "use.sml"))
	if err != nil {
		t.Fatalf("smlc local: %v\n%s", err, localOut)
	}

	// Same per-unit report lines (modulo the output directory).
	norm := func(s, dir string) string { return strings.ReplaceAll(s, dir+string(os.PathSeparator), "") }
	if norm(string(daemonOut), viaDaemon) != norm(localOut, local) {
		t.Fatalf("smlc output differs:\nvia daemon: %slocal: %s", daemonOut, localOut)
	}
	// Byte-identical bin files.
	for _, name := range []string{"lib.bin", "use.bin"} {
		a, err := os.ReadFile(filepath.Join(viaDaemon, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(local, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between daemon and local compile", name)
		}
	}

	// The daemon's own store gained nothing: /v1/compile persists no
	// entries.
	entries, err := os.ReadDir(store)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".bin") {
			t.Fatalf("compile persisted %s into the daemon store", e.Name())
		}
	}
}
