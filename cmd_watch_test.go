package repro

// End-to-end tests for `irm watch`: a scripted drive session whose
// store must match cold builds byte for byte, the live -serve surface
// (/watch SSE + the latency histogram on /metrics), and the -since
// filter of `irm history`/`irm top`.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/watch"
)

// watchProc is a running `irm watch` subprocess with its stdout
// captured and its stderr scanned for the -serve announcement.
type watchProc struct {
	cmd    *exec.Cmd
	stdout *bytes.Buffer
	addr   chan string
}

func startWatch(t *testing.T, bin string, args ...string) *watchProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"watch"}, args...)...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &watchProc{cmd: cmd, stdout: &stdout, addr: make(chan string, 1)}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "irm: listening on "); ok {
				select {
				case p.addr <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return p
}

// wait blocks until the process exits, failing the test on timeout or
// a nonzero status, and returns its stdout.
func (p *watchProc) wait(t *testing.T, timeout time.Duration) string {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("irm watch exited: %v\n%s", err, p.stdout.String())
		}
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		t.Fatalf("irm watch did not exit\n%s", p.stdout.String())
	}
	return p.stdout.String()
}

// storeBins reads every top-level .bin file of a store directory.
func storeBins(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".bin") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestWatchCLIDriveSession runs the scripted-session acceptance path
// end to end through the real binary: `irm watch -drive` edits its own
// workload, the exit report carries the latency quantiles, the final
// store matches cold builds at -j1 and -j8 byte for byte, and every
// iteration landed in the ledger where `irm history` can read it.
func TestWatchCLIDriveSession(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	const edits = 10
	tools := buildTools(t, "irm")
	work := t.TempDir()

	genOut, err := runTool(t, tools["irm"], "",
		"gen", "-dir", filepath.Join(work, "proj"), "-units", "8", "-lines", "10")
	if err != nil {
		t.Fatalf("irm gen: %v\n%s", err, genOut)
	}
	groupPath := strings.TrimSpace(genOut)
	store := filepath.Join(work, "store")

	p := startWatch(t, tools["irm"], groupPath, "-store", store, "-j", "2",
		"-poll", "20ms", "-debounce", "5ms",
		"-drive", "10", "-drive-seed", "3", "-report", "json")
	out := p.wait(t, 2*time.Minute)

	lines := strings.Split(strings.TrimSpace(out), "\n")
	var rep watch.Report
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rep); err != nil {
		t.Fatalf("last stdout line not a watch report: %v\n%s", err, out)
	}
	if rep.Schema != watch.ReportSchema {
		t.Fatalf("report schema = %q, want %q", rep.Schema, watch.ReportSchema)
	}
	if rep.Iterations != edits+1 || rep.Rebuilds != edits {
		t.Errorf("report iterations=%d rebuilds=%d, want %d/%d",
			rep.Iterations, rep.Rebuilds, edits+1, edits)
	}
	if rep.Latency.Count != edits || rep.Latency.P50Ns <= 0 ||
		rep.Latency.P99Ns < rep.Latency.P50Ns {
		t.Errorf("latency summary implausible: %+v", rep.Latency)
	}

	// Determinism: cold builds of the final edited tree, at two widths,
	// must produce exactly the bins the watch session left behind.
	for _, j := range []string{"1", "8"} {
		coldStore := filepath.Join(work, "cold-j"+j)
		if out, err := runTool(t, tools["irm"], "",
			"build", groupPath, "-store", coldStore, "-j", j, "-history", "off"); err != nil {
			t.Fatalf("cold build -j%s: %v\n%s", j, err, out)
		}
		want := storeBins(t, coldStore)
		got := storeBins(t, store)
		if len(want) == 0 {
			t.Fatal("cold build produced no bins")
		}
		for name, wantData := range want {
			if !bytes.Equal(got[name], wantData) {
				t.Errorf("-j%s: %s differs between watch store and cold build", j, name)
			}
		}
		for name := range got {
			if _, ok := want[name]; !ok {
				t.Errorf("-j%s: watch store has extra bin %s", j, name)
			}
		}
	}

	// Every iteration is in the ledger, readable by `irm history`.
	hist, err := runTool(t, tools["irm"], "", "history", "-store", store)
	if err != nil {
		t.Fatalf("irm history: %v\n%s", err, hist)
	}
	var okLines int
	for _, line := range strings.Split(hist, "\n") {
		if strings.Contains(line, " ok ") {
			okLines++
		}
	}
	if okLines != edits+1 {
		t.Errorf("irm history shows %d ok builds, want %d:\n%s", okLines, edits+1, hist)
	}
}

// TestWatchCLIServe drives the live surface: an edit made while `irm
// watch -serve` runs must appear as an SSE iteration event on /watch,
// the latency histogram must be scrapeable on /metrics, and SIGTERM
// must end the session cleanly with a report.
func TestWatchCLIServe(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "irm")
	work := t.TempDir()

	genOut, err := runTool(t, tools["irm"], "",
		"gen", "-dir", filepath.Join(work, "proj"), "-units", "4", "-lines", "8")
	if err != nil {
		t.Fatalf("irm gen: %v\n%s", err, genOut)
	}
	groupPath := strings.TrimSpace(genOut)
	store := filepath.Join(work, "store")

	p := startWatch(t, tools["irm"], groupPath, "-store", store,
		"-poll", "20ms", "-debounce", "5ms", "-serve", "127.0.0.1:0",
		"-report", "json")
	var base string
	select {
	case addr := <-p.addr:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("irm watch -serve never announced its address")
	}

	// Subscribe to /watch before editing so the iteration event cannot
	// be missed.
	resp, err := http.Get(base + "/watch")
	if err != nil {
		t.Fatalf("GET /watch: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/watch Content-Type = %q", ct)
	}

	// Wait for the initial build before editing: an edit that lands
	// while the watcher is still recording baseline signatures would be
	// absorbed into the baseline instead of triggering a rebuild.
	initDeadline := time.Now().Add(30 * time.Second)
	for {
		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		body, _ := readAllString(mresp)
		if strings.Contains(body, "irm_watch_iterations 1") {
			break
		}
		if time.Now().After(initDeadline) {
			t.Fatal("initial watch iteration never appeared in /metrics")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Edit one unit; any source change works, the driver isn't needed.
	unit := filepath.Join(work, "proj", "u000.sml")
	src, err := os.ReadFile(unit)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(unit, append([]byte("(* cli edit *)\n"), src...), 0o644); err != nil {
		t.Fatal(err)
	}

	// Read SSE frames until an iteration event with seq >= 1 arrives.
	frames := make(chan watch.Event, 8)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				var ev watch.Event
				if json.Unmarshal([]byte(data), &ev) == nil {
					frames <- ev
				}
			}
		}
	}()
	deadline := time.After(30 * time.Second)
	var got watch.Event
	for got.Seq < 1 {
		select {
		case got = <-frames:
		case <-deadline:
			t.Fatal("no SSE iteration event for the edit")
		}
	}
	if got.Schema != watch.EventSchema || got.Outcome != watch.OutcomeOK {
		t.Fatalf("SSE event = %+v", got)
	}
	if len(got.Changed) == 0 {
		t.Errorf("SSE event has no changed files: %+v", got)
	}

	// The rebuild's latency must be scrapeable as a native histogram.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := readAllString(mresp)
	for _, want := range []string{
		"# TYPE irm_watch_latency_seconds histogram",
		"irm_watch_latency_seconds_bucket{le=\"+Inf\"}",
		"irm_watch_latency_seconds_sum",
		"irm_watch_latency_seconds_count",
		"irm_watch_iterations",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// SIGTERM ends the session cleanly; the report still prints.
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	out := p.wait(t, 30*time.Second)
	var rep watch.Report
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rep); err != nil {
		t.Fatalf("no report after SIGTERM: %v\n%s", err, out)
	}
	if rep.Rebuilds < 1 {
		t.Errorf("report rebuilds = %d, want >= 1", rep.Rebuilds)
	}
}

func readAllString(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var sb strings.Builder
	_, err := bufio.NewReader(resp.Body).WriteTo(&sb)
	return sb.String(), err
}

// TestHistorySinceCLI: -since restricts `irm history` and `irm top`
// to recent records.
func TestHistorySinceCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "irm")
	dir := filepath.Join(t.TempDir(), "ledger")
	l, err := history.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	rec := func(age time.Duration, name string) history.Record {
		return history.Record{
			Schema: history.Schema, TimeUnixNs: now.Add(-age).UnixNano(),
			Name: name, Policy: "cutoff", Outcome: history.OutcomeOK,
			WallNs: int64(100 * time.Millisecond), Units: 2, Loaded: 2,
		}
	}
	if err := l.Append(rec(3*time.Hour, "old.cm")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(time.Minute, "new.cm")); err != nil {
		t.Fatal(err)
	}

	out, err := runTool(t, tools["irm"], "", "history", "-dir", dir)
	if err != nil {
		t.Fatalf("irm history: %v\n%s", err, out)
	}
	if !strings.Contains(out, "old.cm") || !strings.Contains(out, "new.cm") {
		t.Fatalf("unfiltered history missing records:\n%s", out)
	}

	out, err = runTool(t, tools["irm"], "", "history", "-dir", dir, "-since", "1h")
	if err != nil {
		t.Fatalf("irm history -since: %v\n%s", err, out)
	}
	if strings.Contains(out, "old.cm") {
		t.Errorf("-since 1h still shows the 3h-old record:\n%s", out)
	}
	if !strings.Contains(out, "new.cm") {
		t.Errorf("-since 1h dropped the recent record:\n%s", out)
	}

	// A window excluding everything reports emptiness rather than erroring.
	out, err = runTool(t, tools["irm"], "", "history", "-dir", dir, "-since", "1s")
	if err != nil {
		t.Fatalf("irm history -since 1s: %v\n%s", err, out)
	}
	if strings.Contains(out, "new.cm") || strings.Contains(out, "old.cm") {
		t.Errorf("-since 1s should filter all records:\n%s", out)
	}

	// `irm top` honors the same flag. The old record is the only one
	// with unit timings, so filtering it empties the table.
	if err := l.Append(history.Record{
		Schema: history.Schema, TimeUnixNs: now.Add(-2 * time.Hour).UnixNano(),
		Name: "old.cm", Policy: "cutoff", Outcome: history.OutcomeOK,
		WallNs: int64(time.Second), Units: 1, Compiled: 1,
		UnitTimings: []obs.UnitTiming{{Unit: "slow.sml", Action: obs.ActionCompiled, Ns: int64(time.Second)}},
	}); err != nil {
		t.Fatal(err)
	}
	out, err = runTool(t, tools["irm"], "", "top", "-dir", dir)
	if err != nil {
		t.Fatalf("irm top: %v\n%s", err, out)
	}
	if !strings.Contains(out, "slow.sml") {
		t.Fatalf("irm top missing slow.sml:\n%s", out)
	}
	out, err = runTool(t, tools["irm"], "", "top", "-dir", dir, "-since", "1h")
	if err != nil {
		t.Fatalf("irm top -since: %v\n%s", err, out)
	}
	if strings.Contains(out, "slow.sml") {
		t.Errorf("irm top -since 1h still aggregates the old record:\n%s", out)
	}
}
